//===- analysis/StaticDependence.cpp --------------------------------------===//

#include "analysis/StaticDependence.h"

#include "analysis/DataFlow.h"
#include "analysis/Dominators.h"
#include "analysis/Loops.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <optional>
#include <set>

using namespace kremlin;

namespace {

constexpr unsigned MaxEvalDepth = 32;

uint64_t absU64(int64_t V) {
  return V < 0 ? static_cast<uint64_t>(-(V + 1)) + 1 : static_cast<uint64_t>(V);
}

uint64_t gcd64(uint64_t A, uint64_t B) {
  while (B != 0) {
    uint64_t T = A % B;
    A = B;
    B = T;
  }
  return A;
}

/// A linear form over the loop's normalized iteration number:
///   IterCoeff * i + Const + sum(SymCoeff_k * sym_k)
/// Symbols are live-in registers (token = V*2) or the unknown initial value
/// of an induction variable (token = V*2+1), kept sorted by token.
struct Affine {
  int64_t IterCoeff = 0;
  int64_t Const = 0;
  std::vector<std::pair<uint64_t, int64_t>> Syms;

  bool isConstant() const { return IterCoeff == 0 && Syms.empty(); }
};

Affine affineConst(int64_t C) {
  Affine A;
  A.Const = C;
  return A;
}

Affine affineSym(uint64_t Token) {
  Affine A;
  A.Syms.push_back({Token, 1});
  return A;
}

Affine affineAdd(const Affine &A, const Affine &B, int64_t Sign) {
  Affine R;
  R.IterCoeff = A.IterCoeff + Sign * B.IterCoeff;
  R.Const = A.Const + Sign * B.Const;
  size_t I = 0, J = 0;
  while (I < A.Syms.size() || J < B.Syms.size()) {
    if (J == B.Syms.size() ||
        (I < A.Syms.size() && A.Syms[I].first < B.Syms[J].first)) {
      R.Syms.push_back(A.Syms[I++]);
    } else if (I == A.Syms.size() || B.Syms[J].first < A.Syms[I].first) {
      R.Syms.push_back({B.Syms[J].first, Sign * B.Syms[J].second});
      ++J;
    } else {
      int64_t C = A.Syms[I].second + Sign * B.Syms[J].second;
      if (C != 0)
        R.Syms.push_back({A.Syms[I].first, C});
      ++I;
      ++J;
    }
  }
  return R;
}

Affine affineScale(const Affine &A, int64_t K) {
  Affine R;
  R.IterCoeff = A.IterCoeff * K;
  R.Const = A.Const * K;
  for (const auto &[Tok, C] : A.Syms)
    if (C * K != 0)
      R.Syms.push_back({Tok, C * K});
  return R;
}

/// One memory access inside the loop, with its resolved address. A Param
/// base is an array parameter of the enclosing function: a definite array,
/// but one that may alias any global or other parameter the caller chose to
/// pass (never a frame array -- an activation cannot be its own caller).
struct MemAccess {
  bool IsStore = false;
  BlockId BB = NoBlock;
  unsigned Idx = 0;
  unsigned Line = 0;
  /// Address resolution state.
  enum class Base : unsigned char { Global, Frame, Param, Unknown } Kind =
      Base::Unknown;
  uint32_t BaseId = 0;
  bool OffsetKnown = false;
  Affine Offset;
  /// Stores only: the stored value is a recognized memory-reduction update
  /// (a[x] = a[x] op e), breakable per HCPA's §4.1 rule.
  bool ReductionStore = false;
  /// Stores only: the reduction operator when ReductionStore is set.
  Opcode ReductionOpc = Opcode::Add;
};

/// May two resolved bases overlap? Identical (Kind, Id) tuples always do;
/// distinct globals and distinct frame arrays never do; an array parameter
/// may alias any global or any other parameter.
bool basesMayAlias(MemAccess::Base K1, uint32_t Id1, MemAccess::Base K2,
                   uint32_t Id2) {
  if (K1 == K2 && Id1 == Id2)
    return true;
  if (K1 == MemAccess::Base::Frame || K2 == MemAccess::Base::Frame)
    return false;
  return K1 == MemAccess::Base::Param || K2 == MemAccess::Base::Param;
}

/// Per-loop evaluation context: affine forms for registers, address
/// resolution, and iteration-cost estimation.
class LoopAnalyzer {
public:
  LoopAnalyzer(const Function &F, const Loop &L, const ReachingDefs &RD,
               const DomTree &DT)
      : F(F), L(L), RD(RD), DT(DT), InLoop(F.Blocks.size(), 0) {
    for (BlockId B : L.Blocks)
      InLoop[B] = 1;
    findInductionVars();
  }

  /// The instruction at a definition site.
  const Instruction &inst(const DefSite &D) const {
    return F.Blocks[D.BB].Insts[D.Idx];
  }

  /// The single in-loop definition of \p V, or nullopt (zero or many).
  std::optional<DefSite> singleInLoopDef(ValueId V) const {
    std::optional<DefSite> Found;
    for (unsigned D : RD.defsOf(V)) {
      const DefSite &Def = RD.defs()[D];
      if (!InLoop[Def.BB])
        continue;
      if (Found)
        return std::nullopt;
      Found = Def;
    }
    return Found;
  }

  bool hasInLoopDef(ValueId V) const {
    for (unsigned D : RD.defsOf(V))
      if (InLoop[RD.defs()[D].BB])
        return true;
    return false;
  }

  /// Whole-function constant folding through single-definition chains.
  std::optional<int64_t> constEval(ValueId V, unsigned Depth = 0) const {
    if (Depth > MaxEvalDepth || V == NoValue)
      return std::nullopt;
    const std::vector<unsigned> &Ds = RD.defsOf(V);
    if (Ds.size() != 1)
      return std::nullopt;
    const Instruction &I = inst(RD.defs()[Ds[0]]);
    switch (I.Op) {
    case Opcode::ConstInt:
      return I.IntImm;
    case Opcode::Move:
      return constEval(I.A, Depth + 1);
    case Opcode::Neg: {
      std::optional<int64_t> A = constEval(I.A, Depth + 1);
      return A ? std::optional<int64_t>(-*A) : std::nullopt;
    }
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul: {
      std::optional<int64_t> A = constEval(I.A, Depth + 1);
      std::optional<int64_t> B = constEval(I.B, Depth + 1);
      if (!A || !B)
        return std::nullopt;
      if (I.Op == Opcode::Add)
        return *A + *B;
      if (I.Op == Opcode::Sub)
        return *A - *B;
      return *A * *B;
    }
    default:
      return std::nullopt;
    }
  }

  /// Affine form of register \p V at a body use point, or nullopt.
  std::optional<Affine> evaluate(ValueId V, unsigned Depth = 0) const {
    if (Depth > MaxEvalDepth || V == NoValue)
      return std::nullopt;
    auto IndIt = InductionStep.find(V);
    if (IndIt != InductionStep.end()) {
      // V = init_V + step * i. A compile-time-constant init folds away the
      // symbol, which lets the GCD/Banerjee tests compare subscript pairs
      // with different strides.
      auto InitIt = InductionInit.find(V);
      Affine A = InitIt != InductionInit.end()
                     ? affineConst(InitIt->second)
                     : affineSym(static_cast<uint64_t>(V) * 2 + 1);
      A.IterCoeff = IndIt->second;
      return A;
    }
    if (!hasInLoopDef(V)) {
      // Loop-invariant: a compile-time constant or an opaque symbol.
      if (std::optional<int64_t> C = constEval(V))
        return affineConst(*C);
      return affineSym(static_cast<uint64_t>(V) * 2);
    }
    std::optional<DefSite> Def = singleInLoopDef(V);
    if (!Def)
      return std::nullopt;
    const Instruction &I = inst(*Def);
    switch (I.Op) {
    case Opcode::ConstInt:
      return affineConst(I.IntImm);
    case Opcode::Move:
      return evaluate(I.A, Depth + 1);
    case Opcode::Neg: {
      std::optional<Affine> A = evaluate(I.A, Depth + 1);
      return A ? std::optional<Affine>(affineScale(*A, -1)) : std::nullopt;
    }
    case Opcode::Add:
    case Opcode::Sub: {
      std::optional<Affine> A = evaluate(I.A, Depth + 1);
      std::optional<Affine> B = evaluate(I.B, Depth + 1);
      if (!A || !B)
        return std::nullopt;
      return affineAdd(*A, *B, I.Op == Opcode::Add ? 1 : -1);
    }
    case Opcode::Mul: {
      std::optional<Affine> A = evaluate(I.A, Depth + 1);
      std::optional<Affine> B = evaluate(I.B, Depth + 1);
      if (!A || !B)
        return std::nullopt;
      if (B->isConstant())
        return affineScale(*A, B->Const);
      if (A->isConstant())
        return affineScale(*B, A->Const);
      return std::nullopt;
    }
    default:
      return std::nullopt;
    }
  }

  /// Resolves the address register of a Load/Store to base + affine offset.
  void resolveAddress(ValueId V, MemAccess &Out, unsigned Depth = 0) const {
    if (Depth > MaxEvalDepth || V == NoValue)
      return;
    std::optional<DefSite> Def;
    if (hasInLoopDef(V)) {
      Def = singleInLoopDef(V);
    } else if (RD.defsOf(V).size() == 1) {
      Def = RD.defs()[RD.defsOf(V)[0]];
    } else if (RD.defsOf(V).empty() && V < F.NumParams) {
      // Array parameter: a definite base address with offset 0.
      Out.Kind = MemAccess::Base::Param;
      Out.BaseId = V;
      Out.OffsetKnown = true;
      return;
    }
    if (!Def)
      return;
    const Instruction &I = inst(*Def);
    switch (I.Op) {
    case Opcode::GlobalAddr:
      Out.Kind = MemAccess::Base::Global;
      Out.BaseId = I.Aux;
      Out.OffsetKnown = true;
      return;
    case Opcode::FrameAddr:
      Out.Kind = MemAccess::Base::Frame;
      Out.BaseId = I.Aux;
      Out.OffsetKnown = true;
      return;
    case Opcode::Move:
      resolveAddress(I.A, Out, Depth + 1);
      return;
    case Opcode::PtrAdd: {
      resolveAddress(I.A, Out, Depth + 1);
      if (Out.Kind == MemAccess::Base::Unknown)
        return;
      std::optional<Affine> Off = evaluate(I.B);
      if (!Off) {
        Out.OffsetKnown = false;
        return;
      }
      if (Out.OffsetKnown)
        Out.Offset = affineAdd(Out.Offset, *Off, 1);
      return;
    }
    default:
      return;
    }
  }

  const std::map<ValueId, int64_t> &inductionVars() const {
    return InductionStep;
  }

  bool dominatesAllLatches(BlockId B) const {
    for (BlockId Latch : L.Latches)
      if (!DT.dominates(B, Latch))
        return false;
    return true;
  }

  /// Exact iteration count of the loop when the header exit test compares
  /// an affine function of one induction variable against a compile-time
  /// constant; nullopt otherwise. Feeds the Banerjee bounds.
  std::optional<int64_t> tripCount() const {
    const BasicBlock &H = F.Blocks[L.Header];
    if (!H.hasTerminator())
      return std::nullopt;
    const Instruction &T = H.terminator();
    if (T.Op != Opcode::CondBr)
      return std::nullopt;
    bool TrueIn = T.Aux < InLoop.size() && InLoop[T.Aux];
    bool FalseIn = T.Aux2 < InLoop.size() && InLoop[T.Aux2];
    if (TrueIn == FalseIn)
      return std::nullopt;
    std::optional<DefSite> CDef = singleInLoopDef(T.A);
    if (!CDef)
      return std::nullopt;
    const Instruction &C = inst(*CDef);
    std::optional<Affine> A = evaluate(C.A);
    std::optional<Affine> B = evaluate(C.B);
    if (!A || !B)
      return std::nullopt;
    // Normalize to "the loop continues while E(i) rel 0" with E = K + S*i.
    Affine E;
    bool Strict = false;
    switch (C.Op) {
    case Opcode::CmpLT:
      E = affineAdd(*A, *B, -1);
      Strict = true;
      break;
    case Opcode::CmpLE:
      E = affineAdd(*A, *B, -1);
      break;
    case Opcode::CmpGT:
      E = affineAdd(*B, *A, -1);
      Strict = true;
      break;
    case Opcode::CmpGE:
      E = affineAdd(*B, *A, -1);
      break;
    default:
      return std::nullopt;
    }
    if (!TrueIn) {
      // The loop continues on the false edge: negate the relation.
      // !(E < 0) == -E <= 0, and !(E <= 0) == -E < 0.
      E = affineScale(E, -1);
      Strict = !Strict;
    }
    if (!E.Syms.empty())
      return std::nullopt;
    int64_t S = E.IterCoeff;
    int64_t K = E.Const;
    if (S <= 0)
      return std::nullopt; // Not provably counting toward the exit.
    // Continue while K + S*i < 0 (strict) or <= 0: the first violating i is
    // the trip count.
    __int128 Num = -static_cast<__int128>(K);
    __int128 Trips =
        Strict ? (Num + S - 1) / S : (Num >= 0 ? Num / S + 1 : 0);
    if (Trips < 0)
      Trips = 0;
    if (Trips > (static_cast<__int128>(1) << 40))
      return std::nullopt;
    return static_cast<int64_t>(Trips);
  }

  /// Does the single-def chain of \p V (within the loop) read register
  /// \p Target? Conservative: unanalyzable chains count as depending.
  bool chainDependsOn(ValueId V, ValueId Target) const {
    std::set<ValueId> Visited;
    return chainDependsOnImpl(V, Target, Visited);
  }

  bool chainDependsOnImpl(ValueId V, ValueId Target,
                          std::set<ValueId> &Visited) const {
    if (V == Target)
      return true;
    if (V == NoValue)
      return true;
    if (!Visited.insert(V).second)
      return false; // Cycle (e.g. an induction recurrence): the first visit
                    // already explored every register this one can read.
    if (!hasInLoopDef(V))
      return false; // Loop-invariant: cannot carry Target's running value.
    std::optional<DefSite> Def = singleInLoopDef(V);
    if (!Def)
      return true;
    const Instruction &I = inst(*Def);
    if (I.Op == Opcode::Call || I.Op == Opcode::Store)
      return true;
    for (ValueId U : instructionUses(I))
      if (chainDependsOnImpl(U, Target, Visited))
        return true;
    return false;
  }

  /// Structural equality of two value chains: both compute the same
  /// expression over the same roots (constants, array cells, live-ins).
  /// Used by the min/max recognizer to match the guard's operand against
  /// the conditionally assigned value, which lowering loads separately.
  bool sameChainEq(ValueId A, ValueId B, unsigned Depth = 0) const {
    if (A == B)
      return true;
    if (Depth > MaxEvalDepth || A == NoValue || B == NoValue)
      return false;
    const Instruction *IA = singleDefInst(A);
    const Instruction *IB = singleDefInst(B);
    if (!IA || !IB) {
      // Distinct registers without usable defs only match as themselves.
      return false;
    }
    // Look through copies on either side.
    if (IA->Op == Opcode::Move)
      return sameChainEq(IA->A, B, Depth + 1);
    if (IB->Op == Opcode::Move)
      return sameChainEq(A, IB->A, Depth + 1);
    if (IA->Op != IB->Op)
      return false;
    switch (IA->Op) {
    case Opcode::ConstInt:
      return IA->IntImm == IB->IntImm;
    case Opcode::ConstFloat:
      return IA->FloatImm == IB->FloatImm;
    case Opcode::GlobalAddr:
    case Opcode::FrameAddr:
      return IA->Aux == IB->Aux;
    case Opcode::Load:
    case Opcode::Neg:
    case Opcode::FNeg:
    case Opcode::Not:
    case Opcode::IntToFloat:
    case Opcode::FloatToInt:
      return sameChainEq(IA->A, IB->A, Depth + 1);
    default:
      if (isBinaryOp(IA->Op))
        return sameChainEq(IA->A, IB->A, Depth + 1) &&
               sameChainEq(IA->B, IB->B, Depth + 1);
      return false;
    }
  }

  /// The unique defining instruction of \p V (in-loop single def preferred,
  /// else the whole-function single def), or nullptr.
  const Instruction *singleDefInst(ValueId V) const {
    if (V == NoValue)
      return nullptr;
    if (hasInLoopDef(V)) {
      std::optional<DefSite> Def = singleInLoopDef(V);
      return Def ? &inst(*Def) : nullptr;
    }
    const std::vector<unsigned> &Ds = RD.defsOf(V);
    return Ds.size() == 1 ? &inst(RD.defs()[Ds[0]]) : nullptr;
  }

  bool inLoop(BlockId B) const { return B < InLoop.size() && InLoop[B]; }

  // --- Iteration-cost model -------------------------------------------------
  //
  // A unit-cost dependence DAG over the loop body, linearized in sorted
  // block order (lowering emits header < body < latch, so this order is
  // topological for structured loops). Induction updates, region markers
  // and terminators are excluded: HCPA's timestamp rule excludes them from
  // the measured critical path too.

  struct CostModel {
    /// Linearized node id per (BB, Idx), UINT32_MAX for excluded insts.
    std::map<std::pair<BlockId, unsigned>, unsigned> NodeOf;
    /// Same-iteration def->use edges, by node id (Preds[n] = def nodes).
    std::vector<std::vector<unsigned>> Preds;
    std::vector<BlockId> BlockOf;
  };

  CostModel buildCostModel() const {
    CostModel CM;
    std::vector<BlockId> Order = L.Blocks; // Already sorted ascending.
    std::map<ValueId, unsigned> LastDef;
    for (BlockId B : Order) {
      for (unsigned Idx = 0; Idx < F.Blocks[B].Insts.size(); ++Idx) {
        const Instruction &I = F.Blocks[B].Insts[Idx];
        if (isTerminator(I.Op) || I.Op == Opcode::RegionEnter ||
            I.Op == Opcode::RegionExit || I.IsInductionUpdate)
          continue;
        unsigned Node = static_cast<unsigned>(CM.Preds.size());
        CM.NodeOf[{B, Idx}] = Node;
        CM.Preds.push_back({});
        CM.BlockOf.push_back(B);
        for (ValueId V : instructionUses(I)) {
          auto It = LastDef.find(V);
          if (It != LastDef.end())
            CM.Preds[Node].push_back(It->second);
        }
        if (producesValue(I.Op) && I.Result != NoValue)
          LastDef[I.Result] = Node;
      }
    }
    return CM;
  }

  /// Longest unit-cost dependence path through one iteration.
  static unsigned criticalPathEstimate(const CostModel &CM) {
    unsigned Max = 0;
    std::vector<unsigned> Depth(CM.Preds.size(), 0);
    for (unsigned N = 0; N < CM.Preds.size(); ++N) {
      unsigned Best = 0;
      for (unsigned P : CM.Preds[N])
        Best = std::max(Best, Depth[P]);
      Depth[N] = Best + 1;
      Max = std::max(Max, Depth[N]);
    }
    return Max;
  }

  /// Longest path from node \p Src to node \p Dst through must-execute
  /// blocks; 0 when no such path exists.
  unsigned chainCost(const CostModel &CM, unsigned Src, unsigned Dst) const {
    if (Src >= CM.Preds.size() || Dst >= CM.Preds.size() || Src > Dst)
      return 0;
    std::vector<unsigned> Dist(CM.Preds.size(), 0);
    Dist[Src] = 1;
    for (unsigned N = Src + 1; N <= Dst; ++N) {
      if (!dominatesAllLatches(CM.BlockOf[N]))
        continue;
      for (unsigned P : CM.Preds[N])
        if (Dist[P] > 0)
          Dist[N] = std::max(Dist[N], Dist[P] + 1);
    }
    return Dist[Dst];
  }

private:
  /// Induction variables of this loop: registers whose canonical update
  /// (`v = Move t` with t = `v +/- step`, both marked by the Induction
  /// pass) has a compile-time-constant step.
  void findInductionVars() {
    for (unsigned D = 0; D < RD.defs().size(); ++D) {
      const DefSite &Def = RD.defs()[D];
      if (!InLoop[Def.BB])
        continue;
      const Instruction &MoveI = inst(Def);
      if (MoveI.Op != Opcode::Move || !MoveI.IsInductionUpdate)
        continue;
      ValueId V = MoveI.Result;
      // The update must be V's only in-loop definition: otherwise the
      // affine form init + step*i does not hold.
      if (!singleInLoopDef(V))
        continue;
      std::optional<DefSite> OpDef = singleInLoopDef(MoveI.A);
      if (!OpDef)
        continue;
      const Instruction &OpI = inst(*OpDef);
      if (!OpI.IsInductionUpdate ||
          (OpI.Op != Opcode::Add && OpI.Op != Opcode::Sub))
        continue;
      // Induction normalizes the accumulator to operand A; B is the step.
      std::optional<int64_t> Step = constEval(OpI.B);
      if (!Step)
        continue;
      InductionStep[V] = OpI.Op == Opcode::Add ? *Step : -*Step;
      if (std::optional<int64_t> Init = initialValueOf(V))
        InductionInit[V] = *Init;
    }
  }

  /// Compile-time initial value of induction variable \p V: the unique
  /// out-of-loop definition, constant-folded.
  std::optional<int64_t> initialValueOf(ValueId V) const {
    const DefSite *OutDef = nullptr;
    for (unsigned D : RD.defsOf(V)) {
      const DefSite &Def = RD.defs()[D];
      if (InLoop[Def.BB])
        continue;
      if (OutDef)
        return std::nullopt;
      OutDef = &Def;
    }
    if (!OutDef)
      return std::nullopt;
    const Instruction &I = inst(*OutDef);
    switch (I.Op) {
    case Opcode::ConstInt:
      return I.IntImm;
    case Opcode::Move:
    case Opcode::Neg: {
      std::optional<int64_t> A = constEval(I.A);
      if (!A)
        return std::nullopt;
      return I.Op == Opcode::Neg ? -*A : *A;
    }
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::Mul: {
      std::optional<int64_t> A = constEval(I.A);
      std::optional<int64_t> B = constEval(I.B);
      if (!A || !B)
        return std::nullopt;
      if (I.Op == Opcode::Add)
        return *A + *B;
      if (I.Op == Opcode::Sub)
        return *A - *B;
      return *A * *B;
    }
    default:
      return std::nullopt;
    }
  }

  const Function &F;
  const Loop &L;
  const ReachingDefs &RD;
  const DomTree &DT;
  std::vector<char> InLoop;
  std::map<ValueId, int64_t> InductionStep;
  std::map<ValueId, int64_t> InductionInit;
};

/// Climbs region parents from the loop's header instructions to the
/// innermost enclosing Loop region.
RegionId loopRegion(const Module &M, const Function &F, const Loop &L) {
  for (const Instruction &I : F.Blocks[L.Header].Insts) {
    RegionId R = I.EnclosingRegion;
    while (R != NoRegion && R < M.Regions.size() &&
           M.Regions[R].Kind != RegionKind::Loop)
      R = M.Regions[R].Parent;
    if (R != NoRegion && R < M.Regions.size())
      return R;
  }
  return NoRegion;
}

/// Sum/product reductions both render as their OpenMP clause operator;
/// a subtracting accumulator is a sum of negated terms.
const char *reductionOpName(Opcode Op) {
  switch (Op) {
  case Opcode::Mul:
  case Opcode::FMul:
    return "*";
  default:
    return "+";
  }
}

/// Human name for a resolved base, for diagnostics.
std::string baseDisplayName(const Module &M, const Function &F,
                            MemAccess::Base Kind, uint32_t Id) {
  switch (Kind) {
  case MemAccess::Base::Global:
    if (Id < M.Globals.size())
      return M.Globals[Id].Name + "[]";
    break;
  case MemAccess::Base::Frame:
    if (Id < F.FrameArrays.size())
      return F.FrameArrays[Id].Name + "[]";
    break;
  case MemAccess::Base::Param:
    return formatString("parameter #%u", Id);
  case MemAccess::Base::Unknown:
    break;
  }
  return "memory";
}

/// Recognizes the conditional-move min/max reduction idiom on scalar \p V:
///
///   if (t REL v) v = t;    // t loop-varying, independent of v
///
/// where REL is an ordering comparison between v and (a chain structurally
/// equal to) t, the update is v's only in-loop definition, no store or call
/// separates the guard from the update, and nothing else in the loop reads
/// v. Under those conditions v is exactly a running min or max -- an
/// associative, commutative reduction -- even though HCPA's runtime rule
/// (which only breaks +/* accumulators) will measure the loop as serial.
/// Returns "min", "max", or nullptr.
const char *minMaxIdiom(const LoopAnalyzer &LA, const Function &F,
                        const Loop &L, ValueId V) {
  std::optional<DefSite> Def = LA.singleInLoopDef(V);
  if (!Def)
    return nullptr;
  const Instruction &MoveI = LA.inst(*Def);
  if (MoveI.Op != Opcode::Move || MoveI.IsInductionUpdate ||
      MoveI.IsReductionUpdate)
    return nullptr;
  BlockId MB = Def->BB;
  if (LA.dominatesAllLatches(MB))
    return nullptr; // Unconditional replacement is not a fold.
  ValueId T = MoveI.A;
  if (LA.chainDependsOn(T, V))
    return nullptr;

  // The update block must hang off a single in-loop branch...
  BlockId Pred = NoBlock;
  for (BlockId B : L.Blocks) {
    if (B == MB || !F.Blocks[B].hasTerminator())
      continue;
    for (BlockId Succ : F.successors(B))
      if (Succ == MB) {
        if (Pred != NoBlock)
          return nullptr;
        Pred = B;
      }
  }
  if (Pred == NoBlock)
    return nullptr;
  const Instruction &Br = F.Blocks[Pred].terminator();
  if (Br.Op != Opcode::CondBr || Br.Aux == Br.Aux2)
    return nullptr;
  bool OnTrue = Br.Aux == MB;
  if (!OnTrue && Br.Aux2 != MB)
    return nullptr;

  // ...whose condition orders v against the replacement value.
  const Instruction *Cmp = LA.singleDefInst(Br.A);
  if (!Cmp)
    return nullptr;
  bool Lt;
  switch (Cmp->Op) {
  case Opcode::CmpLT:
  case Opcode::CmpLE:
  case Opcode::FCmpLT:
  case Opcode::FCmpLE:
    Lt = true;
    break;
  case Opcode::CmpGT:
  case Opcode::CmpGE:
  case Opcode::FCmpGT:
  case Opcode::FCmpGE:
    Lt = false;
    break;
  default:
    return nullptr;
  }
  // Either operand may reach v through one copy.
  const Instruction *VCopy = nullptr;
  auto IsV = [&](ValueId X) {
    if (X == V)
      return true;
    const Instruction *XI = LA.singleDefInst(X);
    if (XI && XI->Op == Opcode::Move && XI->A == V) {
      VCopy = XI;
      return true;
    }
    return false;
  };
  bool VFirst;
  if (IsV(Cmp->A) && LA.sameChainEq(Cmp->B, T))
    VFirst = true;
  else if (IsV(Cmp->B) && LA.sameChainEq(Cmp->A, T))
    VFirst = false;
  else
    return nullptr;

  // The guard's operand and the assigned value are separate loads in the
  // lowered IR; no store or call may intervene between their evaluations.
  const BasicBlock &PB = F.Blocks[Pred];
  size_t CmpIdx = PB.Insts.size();
  for (size_t Idx = 0; Idx < PB.Insts.size(); ++Idx)
    if (&PB.Insts[Idx] == Cmp)
      CmpIdx = Idx;
  if (CmpIdx == PB.Insts.size())
    return nullptr; // Guard not computed in the branching block.
  for (size_t Idx = CmpIdx + 1; Idx < PB.Insts.size(); ++Idx)
    if (PB.Insts[Idx].Op == Opcode::Store || PB.Insts[Idx].Op == Opcode::Call)
      return nullptr;
  for (const Instruction &I : F.Blocks[MB].Insts)
    if (I.Op == Opcode::Store || I.Op == Opcode::Call)
      return nullptr;

  // Nothing else in the loop may observe the running value.
  for (BlockId B : L.Blocks)
    for (const Instruction &I : F.Blocks[B].Insts) {
      if (&I == Cmp || &I == &MoveI || &I == VCopy)
        continue;
      for (ValueId U : instructionUses(I))
        if (U == V)
          return nullptr;
    }

  // Replacing v by t when P(t, v) holds keeps the smaller value iff the
  // update fires when t is below v.
  bool TakesSmaller = VFirst ? !Lt : Lt;
  if (!OnTrue)
    TakesSmaller = !TakesSmaller;
  return TakesSmaller ? "min" : "max";
}

StaticLoopResult classifyLoop(const Module &M, const Function &F,
                              const Loop &L, const LoopInfo &LI, size_t LoopIdx,
                              const ReachingDefs &RD, const DomTree &DT,
                              const ModRefResult *MR) {
  StaticLoopResult Result;
  Result.Func = F.Id;
  Result.Header = L.Header;
  Result.Region = loopRegion(M, F, L);

  // Only innermost loops get a definite verdict: an inner loop's carried
  // dependences and trip counts make the subscript tests meaningless for
  // the outer loop.
  for (size_t Other = 0; Other < LI.Loops.size(); ++Other)
    if (LI.Loops[Other].Parent == static_cast<int>(LoopIdx)) {
      Result.Reason = "contains a nested loop";
      return Result;
    }

  LoopAnalyzer LA(F, L, RD, DT);

  // --- Calls: map callee mod/ref summaries to caller-side effects ----------
  //
  // Each summarized call becomes a set of whole-array accesses (unknown
  // offsets) against the bases the callee can reach: its globals, plus
  // whatever arrays the caller passed into dereferenced parameters. A call
  // with no usable summary keeps the pre-interprocedural behavior: the loop
  // forfeits its verdict.
  struct CallEffect {
    MemAccess::Base Kind = MemAccess::Base::Unknown;
    uint32_t BaseId = 0;
    bool Read = false;
    bool Write = false;
    unsigned Line = 0;
    FuncId Callee = NoFunc;
  };
  std::vector<CallEffect> CallEffects;
  std::set<std::string> CalleeNames;
  std::set<std::string> OpaqueCallees;
  for (BlockId B : L.Blocks)
    for (const Instruction &I : F.Blocks[B].Insts) {
      if (I.Op != Opcode::Call)
        continue;
      ++Result.CallSites;
      std::string Name =
          I.Aux < M.Functions.size() ? M.Functions[I.Aux].Name : "?";
      CalleeNames.insert(Name);
      const ModRefSummary *S = MR ? MR->of(I.Aux) : nullptr;
      if (!S || S->Opaque) {
        OpaqueCallees.insert(Name);
        continue;
      }
      bool Usable = true;
      std::vector<CallEffect> Local;
      for (GlobalId G : S->GlobalReads)
        Local.push_back({MemAccess::Base::Global, G, true, false, I.Line,
                         I.Aux});
      for (GlobalId G : S->GlobalWrites)
        Local.push_back({MemAccess::Base::Global, G, false, true, I.Line,
                         I.Aux});
      unsigned NumK = static_cast<unsigned>(
          std::max(S->ParamReads.size(), S->ParamWrites.size()));
      for (unsigned K = 0; K < NumK; ++K) {
        bool Rd = S->readsParam(K);
        bool Wr = S->writesParam(K);
        if (!Rd && !Wr)
          continue;
        MemAccess Root;
        if (K < I.CallArgs.size())
          LA.resolveAddress(I.CallArgs[K], Root);
        if (Root.Kind == MemAccess::Base::Unknown) {
          Usable = false;
          break;
        }
        Local.push_back({Root.Kind, Root.BaseId, Rd, Wr, I.Line, I.Aux});
      }
      if (!Usable) {
        OpaqueCallees.insert(Name);
        continue;
      }
      ++Result.CallsSummarized;
      CallEffects.insert(CallEffects.end(), Local.begin(), Local.end());
    }
  Result.Callees.assign(CalleeNames.begin(), CalleeNames.end());

  if (!OpaqueCallees.empty()) {
    // Satellite fix: name every distinct unsummarizable callee, not just
    // the first one encountered.
    std::string Names;
    for (const std::string &N : OpaqueCallees) {
      if (!Names.empty())
        Names += ", ";
      Names += N + "()";
    }
    Result.Reason = "calls " + Names + "; callee side effects not summarizable";
    return Result;
  }

  // --- Scalar dependences + reduction recognition ---------------------------
  std::vector<ScalarCarriedDep> ScalarDeps =
      findLoopCarriedScalarDeps(F, L, RD, DT);
  const ScalarCarriedDep *BlockingScalar = nullptr;
  const ScalarCarriedDep *CertainScalar = nullptr;
  std::set<ValueId> ReductionValues;
  std::set<std::string> ReductionOps;
  bool MinMax = false;
  std::map<ValueId, const char *> MinMaxMemo;
  auto MinMaxOf = [&](ValueId V) {
    auto It = MinMaxMemo.find(V);
    if (It == MinMaxMemo.end())
      It = MinMaxMemo.emplace(V, minMaxIdiom(LA, F, L, V)).first;
    return It->second;
  };
  for (const ScalarCarriedDep &Dep : ScalarDeps) {
    if (Dep.Breakable) {
      // Separate reduction accumulators (which need a reduction clause)
      // from induction bookkeeping (which vanishes under privatization).
      const Instruction &DefI = F.Blocks[Dep.Def.BB].Insts[Dep.Def.Idx];
      const Instruction *OpI = &DefI;
      if (DefI.Op == Opcode::Move && !DefI.IsReductionUpdate)
        if (const Instruction *Src = LA.singleDefInst(DefI.A))
          OpI = Src;
      if (OpI->IsReductionUpdate) {
        ReductionValues.insert(Dep.Value);
        ReductionOps.insert(reductionOpName(OpI->Op));
      }
      continue;
    }
    if (const char *MM = MinMaxOf(Dep.Value)) {
      ReductionValues.insert(Dep.Value);
      ReductionOps.insert(MM);
      MinMax = true;
      continue;
    }
    if (!BlockingScalar)
      BlockingScalar = &Dep;
    if (Dep.Certain && !CertainScalar)
      CertainScalar = &Dep;
  }

  // --- Memory accesses and subscript tests ---------------------------------
  std::vector<MemAccess> Accesses;
  unsigned NumStores = 0;
  std::set<std::pair<BlockId, unsigned>> MemReductionStores;
  for (BlockId B : L.Blocks)
    for (unsigned Idx = 0; Idx < F.Blocks[B].Insts.size(); ++Idx) {
      const Instruction &I = F.Blocks[B].Insts[Idx];
      if (I.Op != Opcode::Load && I.Op != Opcode::Store)
        continue;
      MemAccess A;
      A.IsStore = I.Op == Opcode::Store;
      A.BB = B;
      A.Idx = Idx;
      A.Line = I.Line;
      LA.resolveAddress(I.A, A);
      if (A.IsStore) {
        ++NumStores;
        // Memory reductions mark the op producing the stored value.
        if (std::optional<DefSite> ValDef = LA.singleInLoopDef(I.B)) {
          const Instruction &ValI = LA.inst(*ValDef);
          A.ReductionStore = ValI.IsReductionUpdate;
          A.ReductionOpc = ValI.Op;
        }
      }
      Accesses.push_back(A);
    }

  bool MemUnknown = false;
  std::string MemUnknownWhy;
  struct MemDep {
    const MemAccess *Store = nullptr;
    const MemAccess *Load = nullptr;
    int64_t Distance = 0;
  };
  std::vector<MemDep> CarriedFlow;

  bool AnyCallWrite = std::any_of(
      CallEffects.begin(), CallEffects.end(),
      [](const CallEffect &E) { return E.Write; });
  if (NumStores > 0 || AnyCallWrite) {
    // Any unresolved access may alias any write.
    for (const MemAccess &A : Accesses)
      if (A.Kind == MemAccess::Base::Unknown || !A.OffsetKnown) {
        MemUnknown = true;
        MemUnknownWhy = formatString(
            "unresolved %s subscript at line %u",
            A.IsStore ? "store" : "load", A.Line);
        break;
      }
  }

  // Flow dependences through summarized calls: a callee write is an
  // unknown-offset store, so any read of a base it may alias (direct load,
  // or a read inside any callee) could observe a prior iteration's write.
  // Write/write overlaps are output dependences and stay breakable.
  if (!MemUnknown)
    for (const CallEffect &E : CallEffects) {
      auto Conflict = [&](MemAccess::Base Kind, uint32_t BaseId) {
        MemUnknown = true;
        MemUnknownWhy = formatString(
            "call to %s() at line %u may carry a dependence through %s",
            E.Callee < M.Functions.size() ? M.Functions[E.Callee].Name.c_str()
                                          : "?",
            E.Line, baseDisplayName(M, F, Kind, BaseId).c_str());
      };
      if (E.Write) {
        for (const MemAccess &A : Accesses)
          if (!A.IsStore && basesMayAlias(E.Kind, E.BaseId, A.Kind, A.BaseId))
            Conflict(E.Kind, E.BaseId);
        for (const CallEffect &E2 : CallEffects)
          if (E2.Read &&
              basesMayAlias(E.Kind, E.BaseId, E2.Kind, E2.BaseId))
            Conflict(E.Kind, E.BaseId);
      }
      if (!MemUnknown && E.Read) {
        for (const MemAccess &A : Accesses)
          if (A.IsStore && basesMayAlias(E.Kind, E.BaseId, A.Kind, A.BaseId))
            Conflict(E.Kind, E.BaseId);
      }
      if (MemUnknown)
        break;
    }

  std::optional<int64_t> Trip; // Computed lazily for the Banerjee bounds.
  bool TripComputed = false;

  if (!MemUnknown)
    for (const MemAccess &S : Accesses) {
      if (!S.IsStore)
        continue;
      for (const MemAccess &Ld : Accesses) {
        if (Ld.IsStore)
          continue;
        if (!basesMayAlias(S.Kind, S.BaseId, Ld.Kind, Ld.BaseId))
          continue; // Provably distinct arrays (word-granular model).
        if (S.Kind != Ld.Kind || S.BaseId != Ld.BaseId) {
          // May alias without a common base: an array parameter against a
          // global or another parameter. Subscripts are incomparable.
          MemUnknown = true;
          MemUnknownWhy = formatString(
              "%s may alias %s (store line %u / load line %u)",
              baseDisplayName(M, F, S.Kind, S.BaseId).c_str(),
              baseDisplayName(M, F, Ld.Kind, Ld.BaseId).c_str(), S.Line,
              Ld.Line);
          break;
        }
        Affine D = affineAdd(S.Offset, Ld.Offset, -1);
        int64_t A1 = S.Offset.IterCoeff;
        int64_t A2 = Ld.Offset.IterCoeff;
        if (D.Syms.empty() && A1 == A2) {
          int64_t C = A1;
          if (C == 0) {
            // ZIV: both subscripts loop-invariant. A reduction store into
            // the cell it reloads is the memory-reduction idiom.
            if (D.Const == 0) {
              if (S.ReductionStore) {
                MemReductionStores.insert({S.BB, S.Idx});
                ReductionOps.insert(reductionOpName(S.ReductionOpc));
              } else {
                CarriedFlow.push_back({&S, &Ld, 1});
              }
            }
            continue;
          }
          // Strong SIV: equal stride. Same cell when iterations differ by
          // dist = (K_store - K_load) / C; a positive integral dist is a
          // flow dependence into a later iteration.
          if (D.Const % C != 0)
            continue; // Never the same cell.
          int64_t Dist = D.Const / C;
          if (Dist > 0)
            CarriedFlow.push_back({&S, &Ld, Dist});
          // Dist == 0: loop-independent. Dist < 0: anti, breakable by
          // privatization (paper §4.1).
          continue;
        }
        // Weak-SIV/MIV pair: dependence iff integers i1, i2 in [0, trips)
        // satisfy  A1*i1 - A2*i2 = RHS  with RHS = K_load - K_store + the
        // symbolic difference. The GCD test refutes over all integers; the
        // Banerjee bounds refute over the iteration space, then over the
        // flow direction (i1 < i2) only -- anti and loop-independent
        // solutions are breakable and do not block a doall verdict.
        uint64_t G = gcd64(A1 == A2 ? absU64(A1) : gcd64(absU64(A1),
                                                         absU64(A2)),
                           0);
        for (const auto &[Tok, Coef] : D.Syms)
          G = gcd64(G, absU64(Coef));
        int64_t DiffConst = S.Offset.Const - Ld.Offset.Const;
        if (G > 0 && absU64(DiffConst) % G != 0)
          continue; // GCD: no integer solution at all.
        if (!D.Syms.empty()) {
          MemUnknown = true;
          MemUnknownWhy = formatString(
              "subscript pair line %u / line %u not comparable (symbolic)",
              S.Line, Ld.Line);
          break;
        }
        if (!TripComputed) {
          Trip = LA.tripCount();
          TripComputed = true;
        }
        if (!Trip || *Trip <= 0) {
          MemUnknown = true;
          MemUnknownWhy = formatString(
              "subscript pair line %u / line %u needs a trip count the "
              "header test does not provide",
              S.Line, Ld.Line);
          break;
        }
        __int128 U = *Trip - 1;
        __int128 RHS = -static_cast<__int128>(DiffConst);
        // Banerjee over the full iteration rectangle [0,U]^2.
        __int128 Lo = (A1 < 0 ? A1 * U : 0) - (A2 > 0 ? A2 * U : 0);
        __int128 Hi = (A1 > 0 ? A1 * U : 0) - (A2 < 0 ? A2 * U : 0);
        if (RHS < Lo || RHS > Hi)
          continue; // No dependence of any kind in bounds.
        // Direction '<' (carried flow: store iteration strictly earlier
        // than load iteration). Substituting i2 = i1 + j with j in [1, U],
        // i1 in [0, U-1] gives (A1-A2)*i1 - A2*j; independent interval
        // bounds over-approximate the coupled feasible set, which is safe
        // for refutation.
        if (U < 1)
          continue; // Single iteration: nothing can be carried.
        __int128 Ad = static_cast<__int128>(A1) - A2;
        __int128 T1Lo = Ad < 0 ? Ad * (U - 1) : 0;
        __int128 T1Hi = Ad > 0 ? Ad * (U - 1) : 0;
        __int128 JA = -static_cast<__int128>(A2) * 1;
        __int128 JB = -static_cast<__int128>(A2) * U;
        __int128 LoF = T1Lo + (JA < JB ? JA : JB);
        __int128 HiF = T1Hi + (JA > JB ? JA : JB);
        if (RHS >= LoF && RHS <= HiF) {
          MemUnknown = true;
          MemUnknownWhy = formatString(
              "possible carried flow between subscripts at line %u / line "
              "%u (Banerjee inconclusive)",
              S.Line, Ld.Line);
          break;
        }
        // Only anti (i1 > i2) or loop-independent solutions remain:
        // breakable by privatization, so the pair does not block a doall.
      }
      if (MemUnknown)
        break;
    }

  // --- Verdict --------------------------------------------------------------
  Result.Reductions = static_cast<unsigned>(ReductionValues.size() +
                                            MemReductionStores.size());
  Result.MinMaxReduction = MinMax;
  for (const std::string &Op : ReductionOps) {
    if (!Result.ReductionOps.empty())
      Result.ReductionOps += ",";
    Result.ReductionOps += Op;
  }

  if (!BlockingScalar && !MemUnknown && CarriedFlow.empty()) {
    std::string CallNote =
        Result.CallSites == 0
            ? ""
            : formatString(" (%u call site%s summarized)", Result.CallSites,
                           Result.CallSites == 1 ? "" : "s");
    if (Result.Reductions > 0) {
      Result.Verdict = LoopVerdict::ProvablyReduction;
      Result.Reason = formatString(
          "parallelizable with reduction(%s); all other dependences "
          "breakable%s",
          Result.ReductionOps.c_str(), CallNote.c_str());
      return Result;
    }
    Result.Verdict = LoopVerdict::ProvablyDoall;
    Result.Reason =
        (NumStores == 0 && CallEffects.empty()
             ? "no stores; all carried scalar deps breakable"
             : "all subscript pairs independent or breakable") +
        CallNote;
    return Result;
  }

  // ProvablySerial needs a dependence that (a) certainly occurs every
  // iteration pair and (b) whose cycle dominates the iteration's critical
  // path; otherwise independent per-iteration work could still pipeline
  // (DOACROSS), and the verdict stays Unknown. Loops containing calls never
  // get the serial verdict: the callee's work makes the unit-cost critical
  // path estimate meaningless.
  LoopAnalyzer::CostModel CM = LA.buildCostModel();
  unsigned CpEst = LoopAnalyzer::criticalPathEstimate(CM);
  auto CycleDominates = [&](unsigned C) {
    return Result.CallSites == 0 && C >= 2 && 2 * C + 4 >= CpEst;
  };

  if (CertainScalar) {
    auto UseIt = CM.NodeOf.find({CertainScalar->Use.BB, CertainScalar->Use.Idx});
    auto DefIt = CM.NodeOf.find({CertainScalar->Def.BB, CertainScalar->Def.Idx});
    unsigned C = 0;
    if (UseIt != CM.NodeOf.end() && DefIt != CM.NodeOf.end())
      C = LA.chainCost(CM, UseIt->second, DefIt->second);
    if (CycleDominates(C)) {
      const Instruction &DefI = F.Blocks[CertainScalar->Def.BB]
                                    .Insts[CertainScalar->Def.Idx];
      const Instruction &UseI = F.Blocks[CertainScalar->Use.BB]
                                    .Insts[CertainScalar->Use.Idx];
      Result.Verdict = LoopVerdict::ProvablySerial;
      Result.DepSrcLine = DefI.Line;
      Result.DepDstLine = UseI.Line;
      Result.Reason = formatString(
          "loop-carried scalar dependence: value written at line %u is read "
          "at line %u in the next iteration",
          DefI.Line, UseI.Line);
      return Result;
    }
  }

  for (const MemDep &Dep : CarriedFlow) {
    // Distance-1 must-execute flow dependence: iteration i+1 reads what
    // iteration i wrote, every iteration.
    if (Dep.Distance != 1)
      continue;
    if (!LA.dominatesAllLatches(Dep.Store->BB) ||
        !LA.dominatesAllLatches(Dep.Load->BB))
      continue;
    auto LdIt = CM.NodeOf.find({Dep.Load->BB, Dep.Load->Idx});
    auto StIt = CM.NodeOf.find({Dep.Store->BB, Dep.Store->Idx});
    unsigned C = 0;
    if (LdIt != CM.NodeOf.end() && StIt != CM.NodeOf.end())
      C = LA.chainCost(CM, LdIt->second, StIt->second);
    if (!CycleDominates(C))
      continue;
    Result.Verdict = LoopVerdict::ProvablySerial;
    Result.DepSrcLine = Dep.Store->Line;
    Result.DepDstLine = Dep.Load->Line;
    Result.Reason = formatString(
        "loop-carried flow dependence (distance %lld): array cell written "
        "at line %u is read at line %u in a later iteration",
        static_cast<long long>(Dep.Distance), Dep.Store->Line,
        Dep.Load->Line);
    return Result;
  }

  // Unknown: report the most specific obstruction.
  if (MemUnknown) {
    Result.Reason = MemUnknownWhy;
  } else if (!CarriedFlow.empty()) {
    Result.Reason = formatString(
        "carried flow dependence (distance %lld, line %u -> line %u) does "
        "not dominate the iteration critical path",
        static_cast<long long>(CarriedFlow.front().Distance),
        CarriedFlow.front().Store->Line, CarriedFlow.front().Load->Line);
  } else if (BlockingScalar) {
    const Instruction &UseI =
        F.Blocks[BlockingScalar->Use.BB].Insts[BlockingScalar->Use.Idx];
    Result.Reason = formatString(
        "possible carried scalar dependence at line %u", UseI.Line);
  } else {
    Result.Reason = "not provable";
  }
  return Result;
}

} // namespace

std::vector<StaticLoopResult>
kremlin::analyzeFunctionDependence(const Module &M, const Function &F,
                                   const ModRefResult *MR) {
  std::vector<StaticLoopResult> Results;
  if (F.Blocks.empty())
    return Results;
  DomTree DT = computeDominators(F);
  LoopInfo LI = computeLoops(F);
  if (LI.Loops.empty())
    return Results;
  ReachingDefs RD(F);
  for (size_t Idx = 0; Idx < LI.Loops.size(); ++Idx)
    Results.push_back(
        classifyLoop(M, F, LI.Loops[Idx], LI, Idx, RD, DT, MR));
  return Results;
}

StaticAnalysisResult kremlin::analyzeModuleDependence(const Module &M) {
  StaticAnalysisResult Result;
  auto Start = std::chrono::steady_clock::now();
  CallGraph CG(M);
  Result.ModRef = computeModRef(M, CG);
  for (const Function &F : M.Functions) {
    std::vector<StaticLoopResult> FR =
        analyzeFunctionDependence(M, F, &Result.ModRef);
    Result.Loops.insert(Result.Loops.end(), FR.begin(), FR.end());
  }
  for (const StaticLoopResult &L : Result.Loops) {
    switch (L.Verdict) {
    case LoopVerdict::ProvablyDoall:
      ++Result.NumDoall;
      break;
    case LoopVerdict::ProvablySerial:
      ++Result.NumSerial;
      break;
    case LoopVerdict::ProvablyReduction:
      ++Result.NumReduction;
      break;
    case LoopVerdict::Unknown:
      ++Result.NumUnknown;
      break;
    }
    Result.CallSites += L.CallSites;
    Result.CallsSummarized += L.CallsSummarized;
    Result.ReductionsRecognized += L.Reductions;
  }
  Result.WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - Start)
                      .count();

  telemetry::Registry &Reg = telemetry::Registry::global();
  static telemetry::Counter &Analyzed = Reg.counter("static.loops_analyzed");
  static telemetry::Counter &Doall = Reg.counter("static.verdict_doall");
  static telemetry::Counter &Serial = Reg.counter("static.verdict_serial");
  static telemetry::Counter &Unknown = Reg.counter("static.verdict_unknown");
  static telemetry::Counter &Reduction =
      Reg.counter("static.verdict_reduction");
  static telemetry::Counter &CallsSum =
      Reg.counter("static.calls_summarized");
  static telemetry::Counter &Reductions = Reg.counter("static.reductions");
  Analyzed.add(Result.Loops.size());
  Doall.add(Result.NumDoall);
  Serial.add(Result.NumSerial);
  Unknown.add(Result.NumUnknown);
  Reduction.add(Result.NumReduction);
  CallsSum.add(Result.CallsSummarized);
  Reductions.add(Result.ReductionsRecognized);
  Reg.histogram("static.analyze_us")
      .record(static_cast<uint64_t>(Result.WallMs * 1000.0));
  return Result;
}
