//===- analysis/StaticDependence.h - Loop dependence verdicts ---*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static loop-dependence analysis: classifies each natural loop (and the
/// Loop region it lowers from) by running a subscript-test cascade
/// (ZIV -> strong SIV -> GCD -> Banerjee) on induction-indexed array
/// accesses, loop-carried scalar dependence detection (DataFlow.h),
/// interprocedural mod/ref summaries for loops containing calls
/// (CallGraph.h / ModRef.h), and reduction idiom recognition.
///
/// Kremlin's self-parallelism is measured on one input; these verdicts are
/// input-independent, so the planner can demote a loop HCPA happened to
/// measure as parallel, and the driver can flag disagreements as
/// input-sensitivity warnings:
///
///  - ProvablyDoall: no loop-carried flow dependence exists on any input
///    (anti/output and induction/reduction dependences are "easy to break"
///    per paper §4.1 and do not count).
///  - ProvablyReduction: parallelizable like a doall, but only with a
///    reduction clause -- the sole carried dependences are reduction
///    recurrences (acc = acc op e with op in {+,*,min,max}, or a
///    same-cell memory reduction).
///  - ProvablySerial: a loop-carried dependence provably occurs on every
///    iteration pair *and* its dependence cycle dominates the iteration's
///    critical path, so no input can make the loop profitable.
///  - Unknown: everything the tests cannot decide (opaque callees,
///    indirect subscripts, nested loops, symbolic strides).
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_ANALYSIS_STATICDEPENDENCE_H
#define KREMLIN_ANALYSIS_STATICDEPENDENCE_H

#include "analysis/ModRef.h"
#include "ir/Module.h"

#include <map>
#include <string>
#include <vector>

namespace kremlin {

/// Input-independent classification of one loop.
enum class LoopVerdict : unsigned char {
  Unknown = 0,
  ProvablyDoall,
  ProvablySerial,
  ProvablyReduction,
};

/// Short lowercase name for tables and diagnostics.
inline const char *loopVerdictName(LoopVerdict V) {
  switch (V) {
  case LoopVerdict::Unknown:
    return "unknown";
  case LoopVerdict::ProvablyDoall:
    return "doall";
  case LoopVerdict::ProvablySerial:
    return "serial";
  case LoopVerdict::ProvablyReduction:
    return "reduction";
  }
  return "unknown";
}

/// Verdict for one natural loop, tied back to its static Loop region.
struct StaticLoopResult {
  /// The Loop region this natural loop lowers from (NoRegion when the CFG
  /// loop has no region marker, e.g. hand-built IR).
  RegionId Region = NoRegion;
  FuncId Func = NoFunc;
  BlockId Header = NoBlock;
  LoopVerdict Verdict = LoopVerdict::Unknown;
  /// One-line justification; for ProvablySerial, cites the blocking
  /// dependence with source locations.
  std::string Reason;
  /// ProvablySerial: source line of the dependence source (the write) and
  /// sink (the read in a later iteration); 0 when unavailable.
  unsigned DepSrcLine = 0;
  unsigned DepDstLine = 0;
  /// Distinct callee names reached from inside the loop, sorted.
  std::vector<std::string> Callees;
  /// Call sites inside the loop, and how many of those had a usable
  /// (non-opaque) mod/ref summary.
  unsigned CallSites = 0;
  unsigned CallsSummarized = 0;
  /// Reduction recurrences recognized in this loop (scalar accumulators,
  /// min/max idioms, and same-cell memory reductions), regardless of the
  /// final verdict.
  unsigned Reductions = 0;
  /// ProvablyReduction: the reduction operator set, e.g. "+" or "+,max".
  std::string ReductionOps;
  /// ProvablyReduction: at least one recognized recurrence is a min/max
  /// idiom. HCPA's runtime rule only breaks +/* reductions, so min/max
  /// loops legitimately *measure* serial while still being parallelizable
  /// with a reduction -- consumers cross-checking verdicts against measured
  /// self-parallelism must not flag those.
  bool MinMaxReduction = false;
};

/// Whole-module analysis output.
struct StaticAnalysisResult {
  std::vector<StaticLoopResult> Loops;
  double WallMs = 0.0;
  unsigned NumDoall = 0;
  unsigned NumSerial = 0;
  unsigned NumUnknown = 0;
  unsigned NumReduction = 0;
  /// Call sites inside analyzed loops: total and with usable summaries.
  unsigned CallSites = 0;
  unsigned CallsSummarized = 0;
  /// Reduction recurrences recognized across all loops (a loop with two
  /// accumulators counts twice).
  unsigned ReductionsRecognized = 0;
  /// Per-function mod/ref summaries (indexed by FuncId) used to reach the
  /// verdicts; exported so lint can report callee side effects.
  ModRefResult ModRef;

  /// The result for region \p R, or nullptr if \p R was not analyzed.
  const StaticLoopResult *forRegion(RegionId R) const {
    for (const StaticLoopResult &L : Loops)
      if (L.Region == R && R != NoRegion)
        return &L;
    return nullptr;
  }

  /// Region -> verdict map in the shape PlannerOptions consumes.
  std::map<RegionId, LoopVerdict> verdictMap() const {
    std::map<RegionId, LoopVerdict> Map;
    for (const StaticLoopResult &L : Loops)
      if (L.Region != NoRegion)
        Map.emplace(L.Region, L.Verdict);
    return Map;
  }

  /// Fraction of analyzed loops left Unknown, in [0,1]; 0 when no loops.
  double unknownFraction() const {
    return Loops.empty() ? 0.0
                         : static_cast<double>(NumUnknown) /
                               static_cast<double>(Loops.size());
  }
};

/// Analyzes every natural loop of \p F. Requires induction/reduction marks
/// (run after instrumentModule); unmarked IR degrades to Unknown verdicts,
/// never to unsound ones. \p MR supplies callee mod/ref summaries; when
/// null, loops containing calls stay Unknown.
std::vector<StaticLoopResult>
analyzeFunctionDependence(const Module &M, const Function &F,
                          const ModRefResult *MR = nullptr);

/// Analyzes every function of \p M (building the call graph and mod/ref
/// summaries first), updates the telemetry registry (static.loops_analyzed,
/// static.verdict_*, static.calls_summarized, static.reductions) and
/// records wall time.
StaticAnalysisResult analyzeModuleDependence(const Module &M);

} // namespace kremlin

#endif // KREMLIN_ANALYSIS_STATICDEPENDENCE_H
