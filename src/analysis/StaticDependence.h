//===- analysis/StaticDependence.h - Loop dependence verdicts ---*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static loop-dependence analysis: classifies each natural loop (and the
/// Loop region it lowers from) by running ZIV/SIV subscript tests on
/// induction-indexed array accesses plus loop-carried scalar dependence
/// detection (DataFlow.h).
///
/// Kremlin's self-parallelism is measured on one input; these verdicts are
/// input-independent, so the planner can demote a loop HCPA happened to
/// measure as parallel, and the driver can flag disagreements as
/// input-sensitivity warnings:
///
///  - ProvablyDoall: no loop-carried flow dependence exists on any input
///    (anti/output and induction/reduction dependences are "easy to break"
///    per paper §4.1 and do not count).
///  - ProvablySerial: a loop-carried dependence provably occurs on every
///    iteration pair *and* its dependence cycle dominates the iteration's
///    critical path, so no input can make the loop profitable.
///  - Unknown: everything the subscript tests cannot decide (calls,
///    indirect subscripts, nested loops, symbolic strides).
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_ANALYSIS_STATICDEPENDENCE_H
#define KREMLIN_ANALYSIS_STATICDEPENDENCE_H

#include "ir/Module.h"

#include <map>
#include <string>
#include <vector>

namespace kremlin {

/// Input-independent classification of one loop.
enum class LoopVerdict : unsigned char {
  Unknown = 0,
  ProvablyDoall,
  ProvablySerial,
};

/// Short lowercase name for tables and diagnostics.
inline const char *loopVerdictName(LoopVerdict V) {
  switch (V) {
  case LoopVerdict::Unknown:
    return "unknown";
  case LoopVerdict::ProvablyDoall:
    return "doall";
  case LoopVerdict::ProvablySerial:
    return "serial";
  }
  return "unknown";
}

/// Verdict for one natural loop, tied back to its static Loop region.
struct StaticLoopResult {
  /// The Loop region this natural loop lowers from (NoRegion when the CFG
  /// loop has no region marker, e.g. hand-built IR).
  RegionId Region = NoRegion;
  FuncId Func = NoFunc;
  BlockId Header = NoBlock;
  LoopVerdict Verdict = LoopVerdict::Unknown;
  /// One-line justification; for ProvablySerial, cites the blocking
  /// dependence with source locations.
  std::string Reason;
  /// ProvablySerial: source line of the dependence source (the write) and
  /// sink (the read in a later iteration); 0 when unavailable.
  unsigned DepSrcLine = 0;
  unsigned DepDstLine = 0;
};

/// Whole-module analysis output.
struct StaticAnalysisResult {
  std::vector<StaticLoopResult> Loops;
  double WallMs = 0.0;
  unsigned NumDoall = 0;
  unsigned NumSerial = 0;
  unsigned NumUnknown = 0;

  /// The result for region \p R, or nullptr if \p R was not analyzed.
  const StaticLoopResult *forRegion(RegionId R) const {
    for (const StaticLoopResult &L : Loops)
      if (L.Region == R && R != NoRegion)
        return &L;
    return nullptr;
  }

  /// Region -> verdict map in the shape PlannerOptions consumes.
  std::map<RegionId, LoopVerdict> verdictMap() const {
    std::map<RegionId, LoopVerdict> Map;
    for (const StaticLoopResult &L : Loops)
      if (L.Region != NoRegion)
        Map.emplace(L.Region, L.Verdict);
    return Map;
  }
};

/// Analyzes every natural loop of \p F. Requires induction/reduction marks
/// (run after instrumentModule); unmarked IR degrades to Unknown verdicts,
/// never to unsound ones.
std::vector<StaticLoopResult> analyzeFunctionDependence(const Module &M,
                                                        const Function &F);

/// Analyzes every function of \p M, updates the telemetry registry
/// (static.loops_analyzed, static.verdict_*) and records wall time.
StaticAnalysisResult analyzeModuleDependence(const Module &M);

} // namespace kremlin

#endif // KREMLIN_ANALYSIS_STATICDEPENDENCE_H
