//===- analysis/CallGraph.h - Module call graph + SCCs ----------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Whole-module call graph over the MiniC IR. Because MiniC has no function
/// pointers, every Call names its callee directly (Instruction::Aux), so the
/// graph is exact. Tarjan's algorithm groups functions into strongly
/// connected components; components are emitted callees-first, which is
/// exactly the bottom-up order the mod/ref summary fixpoint wants.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_ANALYSIS_CALLGRAPH_H
#define KREMLIN_ANALYSIS_CALLGRAPH_H

#include "ir/Module.h"

#include <vector>

namespace kremlin {

/// One call instruction, located precisely enough to revisit it.
struct CallSite {
  FuncId Caller = NoFunc;
  FuncId Callee = NoFunc;
  BlockId BB = NoBlock;
  unsigned Idx = 0;
  unsigned Line = 0;
};

/// Exact call graph of a module with Tarjan SCC decomposition.
class CallGraph {
public:
  explicit CallGraph(const Module &M);

  /// Distinct callees of \p F, sorted ascending.
  const std::vector<FuncId> &callees(FuncId F) const { return Callees[F]; }

  /// Every call instruction in the module, in (function, block, index) order.
  const std::vector<CallSite> &sites() const { return Sites; }

  /// SCC index of \p F. SCCs are numbered in bottom-up (callees-first)
  /// order: every callee of F outside F's component has a smaller index.
  unsigned sccOf(FuncId F) const { return SccIndex[F]; }

  /// Components in bottom-up order; each is a sorted list of members.
  const std::vector<std::vector<FuncId>> &sccs() const { return Sccs; }

  /// True when \p F can (transitively) call itself: it sits in a
  /// multi-function component or has a direct self edge.
  bool isRecursive(FuncId F) const { return Recursive[F]; }

  size_t numFunctions() const { return Callees.size(); }

private:
  std::vector<std::vector<FuncId>> Callees;
  std::vector<CallSite> Sites;
  std::vector<unsigned> SccIndex;
  std::vector<std::vector<FuncId>> Sccs;
  std::vector<char> Recursive;
};

} // namespace kremlin

#endif // KREMLIN_ANALYSIS_CALLGRAPH_H
