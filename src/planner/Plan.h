//===- planner/Plan.h - Parallelism plans ------------------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallelism plan (paper §2.3): an ordered list of regions for the
/// programmer to parallelize, each annotated with the metrics Kremlin's UI
/// shows (Figure 3) — self-parallelism, coverage, and the estimated
/// whole-program speedup of parallelizing that region alone.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_PLANNER_PLAN_H
#define KREMLIN_PLANNER_PLAN_H

#include "analysis/StaticDependence.h"
#include "ir/Module.h"
#include "profile/ParallelismProfile.h"

#include <string>
#include <vector>

namespace kremlin {

/// One recommended region.
struct PlanItem {
  RegionId Region = NoRegion;
  double SelfP = 1.0;
  double CoveragePct = 0.0;
  LoopClass Class = LoopClass::NotLoop;
  /// Static loop-dependence verdict for the region (Unknown when the
  /// analyzer did not run or could not prove anything).
  LoopVerdict Static = LoopVerdict::Unknown;
  /// Fraction of whole-program serial time removed by parallelizing this
  /// region ideally: coverage * (1 - 1/SP).
  double GainFrac = 0.0;
  /// Amdahl speedup of the whole program if only this region is
  /// parallelized: 1 / (1 - GainFrac).
  double EstSpeedup = 1.0;
};

/// An ordered parallelism plan.
struct Plan {
  std::string Personality;
  /// Recommended regions, highest estimated speedup first.
  std::vector<PlanItem> Items;
  /// Ideal whole-program speedup if the full plan is applied.
  double EstProgramSpeedup = 1.0;

  bool contains(RegionId R) const {
    for (const PlanItem &I : Items)
      if (I.Region == R)
        return true;
    return false;
  }

  std::vector<RegionId> regionIds() const {
    std::vector<RegionId> Ids;
    Ids.reserve(Items.size());
    for (const PlanItem &I : Items)
      Ids.push_back(I.Region);
    return Ids;
  }
};

/// Renders the plan in the Figure 3 UI format:
///   #  File (lines)        Self-P  Cov (%)
std::string printPlan(const Module &M, const Plan &P,
                      size_t MaxRows = 25);

} // namespace kremlin

#endif // KREMLIN_PLANNER_PLAN_H
