//===- planner/RegionTree.cpp ---------------------------------------------===//

#include "planner/RegionTree.h"

#include <algorithm>

using namespace kremlin;

PlanningTree::PlanningTree(const ParallelismProfile &Profile) {
  const Module &M = Profile.module();
  size_t N = M.Regions.size();
  Children.assign(N, {});
  Parent.assign(N, NoRegion);
  InTree.assign(N, 0);
  Root = Profile.rootRegion();
  if (Root == NoRegion)
    return;

  // Primary parent per region: the observed dynamic parent contributing the
  // most work.
  std::vector<RegionId> Primary(N, NoRegion);
  std::vector<uint64_t> BestWork(N, 0);
  for (const RegionEdge &E : Profile.edges()) {
    if (E.Child == Root)
      continue; // The root keeps no parent even if recursion re-enters it.
    if (Primary[E.Child] == NoRegion || E.Work > BestWork[E.Child]) {
      Primary[E.Child] = E.Parent;
      BestWork[E.Child] = E.Work;
    }
  }

  auto IsCandidate = [&](RegionId R) {
    return M.Regions[R].Kind != RegionKind::Body &&
           Profile.entry(R).Executed;
  };

  // Attach every executed candidate to its nearest candidate ancestor,
  // walking primary-parent links through Body regions. A cycle (recursion)
  // or a dead end attaches to the root.
  for (RegionId R = 0; R < N; ++R) {
    if (!IsCandidate(R) || R == Root)
      continue;
    RegionId P = Primary[R];
    unsigned Hops = 0;
    while (P != NoRegion && !IsCandidate(P) && Hops < N + 1) {
      P = Primary[P];
      ++Hops;
    }
    if (P == NoRegion || Hops >= N + 1 || P == R)
      P = Root;
    Parent[R] = P;
    Children[P].push_back(R);
  }

  // Preorder walk from the root, breaking any residual cycles with a
  // visited check; unreachable candidates are re-attached to the root.
  std::vector<char> Visited(N, 0);
  std::vector<RegionId> Stack = {Root};
  Visited[Root] = 1;
  InTree[Root] = 1;
  while (!Stack.empty()) {
    RegionId R = Stack.back();
    Stack.pop_back();
    Preorder.push_back(R);
    for (RegionId C : Children[R]) {
      if (Visited[C])
        continue;
      Visited[C] = 1;
      InTree[C] = 1;
      Stack.push_back(C);
    }
  }
  for (RegionId R = 0; R < N; ++R) {
    if (!IsCandidate(R) || Visited[R])
      continue;
    // Cycle member never reached: re-root it.
    auto &Sibs = Children[Parent[R]];
    Sibs.erase(std::remove(Sibs.begin(), Sibs.end(), R), Sibs.end());
    Parent[R] = Root;
    Children[Root].push_back(R);
    Visited[R] = 1;
    InTree[R] = 1;
    Preorder.push_back(R);
  }
}
