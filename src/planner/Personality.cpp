//===- planner/Personality.cpp --------------------------------------------===//

#include "planner/Personality.h"

#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cmath>

using namespace kremlin;

namespace {

/// Records one planner eligibility decision: accepted/rejected counters in
/// the registry, plus — when a trace sink is configured — an instant event
/// carrying the region id and the reason, so a trace shows *why* each
/// region made or missed the plan.
/// The static loop-dependence verdict for \p R, Unknown when the analyzer
/// did not run or produced nothing for this region.
LoopVerdict staticVerdictOf(const PlannerOptions &Opts, RegionId R) {
  auto It = Opts.StaticVerdicts.find(R);
  return It == Opts.StaticVerdicts.end() ? LoopVerdict::Unknown : It->second;
}

void planDecision(RegionId R, bool Accepted, const char *Reason) {
  static telemetry::Counter &AcceptedC =
      telemetry::Registry::global().counter("planner.accepted");
  static telemetry::Counter &RejectedC =
      telemetry::Registry::global().counter("planner.rejected");
  (Accepted ? AcceptedC : RejectedC).add();
  if (telemetry::traceEnabled())
    telemetry::instantEvent(
        formatString("plan.%s r%u", Accepted ? "accept" : "reject",
                     static_cast<unsigned>(R)),
        "planner",
        {{"region", std::to_string(R)}, {"reason", Reason}});
}

} // namespace

PlanItem kremlin::makePlanItem(const ParallelismProfile &Profile,
                               RegionId R) {
  const RegionProfileEntry &E = Profile.entry(R);
  PlanItem Item;
  Item.Region = R;
  Item.SelfP = E.SelfParallelism;
  Item.CoveragePct = E.CoveragePct;
  Item.Class = E.Class;
  double Frac = E.CoveragePct / 100.0;
  Item.GainFrac = Frac * (1.0 - 1.0 / std::max(1.0, E.SelfParallelism));
  Item.EstSpeedup = Item.GainFrac < 1.0 ? 1.0 / (1.0 - Item.GainFrac) : 1e9;
  return Item;
}

/// Sorts items by decreasing gain, annotates each with its static verdict,
/// and computes the combined Amdahl speedup (valid when the selected
/// regions are disjoint along every path).
static Plan finishPlan(std::string Name, std::vector<PlanItem> Items,
                       const PlannerOptions &Opts) {
  for (PlanItem &I : Items)
    I.Static = staticVerdictOf(Opts, I.Region);
  std::sort(Items.begin(), Items.end(),
            [](const PlanItem &A, const PlanItem &B) {
              if (A.GainFrac != B.GainFrac)
                return A.GainFrac > B.GainFrac;
              return A.Region < B.Region;
            });
  static telemetry::Counter &Selected =
      telemetry::Registry::global().counter("planner.selected");
  Selected.add(Items.size());
  double TotalGain = 0.0;
  for (const PlanItem &I : Items)
    TotalGain += I.GainFrac;
  TotalGain = std::min(TotalGain, 0.999999);
  Plan P;
  P.Personality = std::move(Name);
  P.Items = std::move(Items);
  P.EstProgramSpeedup = 1.0 / (1.0 - TotalGain);
  return P;
}

namespace {

// --- OpenMP (§5.1) ----------------------------------------------------------

class OpenMPPersonality : public Personality {
public:
  std::string name() const override { return "openmp"; }

  /// The naive algorithm of §5.1: repeatedly take the highest-gain
  /// eligible region, excluding anything that can reach or be reached
  /// from a selection. Suboptimal when a parent's single gain beats each
  /// child but not their sum (ft/lu).
  template <typename EligibleFn>
  Plan planGreedy(const ParallelismProfile &Profile, const PlanningTree &Tree,
                  const PlannerOptions &Opts, EligibleFn Eligible) const {
    std::vector<PlanItem> Candidates;
    for (RegionId R : Tree.preorder())
      if (Eligible(R))
        Candidates.push_back(makePlanItem(Profile, R));
    std::sort(Candidates.begin(), Candidates.end(),
              [](const PlanItem &A, const PlanItem &B) {
                return A.GainFrac > B.GainFrac;
              });
    std::vector<PlanItem> Items;
    auto OnPathToSelection = [&](RegionId R) {
      for (const PlanItem &Sel : Items) {
        // Ancestor?
        for (RegionId P = Sel.Region; P != NoRegion; P = Tree.parent(P))
          if (P == R)
            return true;
        // Descendant?
        for (RegionId P = R; P != NoRegion; P = Tree.parent(P))
          if (P == Sel.Region)
            return true;
      }
      return false;
    };
    for (const PlanItem &C : Candidates)
      if (!OnPathToSelection(C.Region))
        Items.push_back(C);
    return finishPlan("openmp-greedy", std::move(Items), Opts);
  }

  Plan plan(const ParallelismProfile &Profile,
            const PlannerOptions &Opts) const override {
    PlanningTree Tree(Profile);
    const Module &M = Profile.module();

    // Eligibility filter: the system model. Every verdict is reported as
    // a planner decision event (counter + optional trace instant).
    auto Eligible = [&](RegionId R) {
      if (Opts.Excluded.count(R)) {
        planDecision(R, false, "excluded");
        return false;
      }
      // A statically proven loop-carried dependence overrides whatever the
      // dynamic profile measured on this input: recommending the region
      // would send the programmer at a loop that cannot be parallelized.
      LoopVerdict V = staticVerdictOf(Opts, R);
      if (V == LoopVerdict::ProvablySerial) {
        planDecision(R, false, "provably-serial");
        return false;
      }
      const StaticRegion &SR = M.Regions[R];
      // OpenMP parallelizes loops; function bodies are exploited through
      // the loops inside them.
      if (SR.Kind != RegionKind::Loop) {
        planDecision(R, false, "not-a-loop");
        return false;
      }
      const RegionProfileEntry &E = Profile.entry(R);
      if (E.SelfParallelism < Opts.MinSelfParallelism) {
        // A statically proven reduction can measure serial when HCPA's
        // runtime rule cannot break its recurrence (min/max idioms); the
        // loop still parallelizes with a reduction clause, so let its
        // iteration count stand in for the understated measurement.
        if (!(V == LoopVerdict::ProvablyReduction &&
              E.avgIterations() >= Opts.MinSelfParallelism)) {
          planDecision(R, false, "self-parallelism-below-threshold");
          return false;
        }
      }
      // Reduction loops must amortize OpenMP's reduction overhead --
      // whether the reduction was observed dynamically or proven
      // statically.
      if ((SR.HasReduction || V == LoopVerdict::ProvablyReduction) &&
          E.avgWork() < Opts.MinReductionWork) {
        planDecision(R, false, "reduction-overhead-unamortized");
        return false;
      }
      PlanItem Item = makePlanItem(Profile, R);
      double SpeedupPct = (Item.EstSpeedup - 1.0) * 100.0;
      double MinPct = E.Class == LoopClass::Doacross
                          ? Opts.MinDoacrossSpeedupPct
                          : Opts.MinDoallSpeedupPct;
      if (SpeedupPct < MinPct) {
        planDecision(R, false, "speedup-below-threshold");
        return false;
      }
      planDecision(R, true, "eligible");
      return true;
    };

    if (Opts.Greedy)
      return planGreedy(Profile, Tree, Opts, Eligible);

    // Bottom-up DP over the tree: best(R) = max(gain(R) if eligible,
    // sum(best(children))). Because Preorder lists parents before
    // children, a reverse walk visits children first.
    size_t N = M.Regions.size();
    std::vector<double> Best(N, 0.0);
    std::vector<char> TakeSelf(N, 0);
    const std::vector<RegionId> &Order = Tree.preorder();
    for (size_t Idx = Order.size(); Idx-- > 0;) {
      RegionId R = Order[Idx];
      double ChildSum = 0.0;
      for (RegionId C : Tree.children(R))
        ChildSum += Best[C];
      double SelfGain = Eligible(R) ? makePlanItem(Profile, R).GainFrac : 0.0;
      if (SelfGain > ChildSum && SelfGain > 0.0) {
        Best[R] = SelfGain;
        TakeSelf[R] = 1;
      } else {
        Best[R] = ChildSum;
      }
    }

    // Collect selections top-down: a selected region prunes its subtree.
    std::vector<PlanItem> Items;
    std::vector<RegionId> Stack = {Tree.root()};
    while (!Stack.empty()) {
      RegionId R = Stack.back();
      Stack.pop_back();
      if (TakeSelf[R]) {
        Items.push_back(makePlanItem(Profile, R));
        continue;
      }
      for (RegionId C : Tree.children(R))
        Stack.push_back(C);
    }
    return finishPlan(name(), std::move(Items), Opts);
  }
};

// --- Cilk++ (§5.2) -----------------------------------------------------------

class CilkPersonality : public Personality {
public:
  std::string name() const override { return "cilk"; }

  Plan plan(const ParallelismProfile &Profile,
            const PlannerOptions &Opts) const override {
    PlanningTree Tree(Profile);
    const Module &M = Profile.module();

    // Cilk++ handles nested and finer-grained parallelism: lower
    // thresholds, functions allowed (spawn), no one-per-path constraint.
    double MinSP = std::max(2.0, Opts.MinSelfParallelism / 2.5);
    double MinPct = Opts.MinDoallSpeedupPct / 2.0;

    std::vector<PlanItem> Items;
    for (RegionId R : Tree.preorder()) {
      if (R == Tree.root())
        continue;
      if (Opts.Excluded.count(R)) {
        planDecision(R, false, "excluded");
        continue;
      }
      LoopVerdict V = staticVerdictOf(Opts, R);
      if (V == LoopVerdict::ProvablySerial) {
        planDecision(R, false, "provably-serial");
        continue;
      }
      const RegionProfileEntry &E = Profile.entry(R);
      if (E.SelfParallelism < MinSP &&
          !(V == LoopVerdict::ProvablyReduction &&
            E.avgIterations() >= MinSP)) {
        planDecision(R, false, "self-parallelism-below-threshold");
        continue;
      }
      PlanItem Item = makePlanItem(Profile, R);
      if ((Item.EstSpeedup - 1.0) * 100.0 < MinPct) {
        planDecision(R, false, "speedup-below-threshold");
        continue;
      }
      planDecision(R, true, "eligible");
      // Nested selections overlap, so the naive Amdahl sum would double
      // count; keep the gain attribution but flag nesting by discounting
      // descendants of an already-selected ancestor.
      bool UnderSelected = false;
      for (RegionId P = Tree.parent(R); P != NoRegion; P = Tree.parent(P)) {
        for (const PlanItem &Sel : Items)
          if (Sel.Region == P)
            UnderSelected = true;
        if (UnderSelected)
          break;
      }
      if (UnderSelected)
        Item.GainFrac = 0.0; // Counted by the enclosing selection.
      Items.push_back(Item);
    }
    (void)M;
    return finishPlan(name(), std::move(Items), Opts);
  }
};

// --- Figure 9 baselines -----------------------------------------------------

class WorkOnlyPersonality : public Personality {
public:
  std::string name() const override { return "work"; }

  Plan plan(const ParallelismProfile &Profile,
            const PlannerOptions &Opts) const override {
    const Module &M = Profile.module();
    std::vector<PlanItem> Items;
    for (const RegionProfileEntry &E : Profile.entries()) {
      if (!E.Executed || M.Regions[E.Id].Kind == RegionKind::Body)
        continue;
      if (Opts.Excluded.count(E.Id))
        continue;
      if (E.CoveragePct < Opts.MinCoveragePct)
        continue;
      // gprof knows nothing about parallelism: rank purely by coverage.
      PlanItem Item = makePlanItem(Profile, E.Id);
      Item.GainFrac = E.CoveragePct / 100.0;
      Items.push_back(Item);
    }
    // gprof-style baseline: deliberately ignores the static verdicts too.
    return finishPlan(name(), std::move(Items), Opts);
  }
};

class SelfPFilterPersonality : public Personality {
public:
  std::string name() const override { return "selfp"; }

  Plan plan(const ParallelismProfile &Profile,
            const PlannerOptions &Opts) const override {
    const Module &M = Profile.module();
    std::vector<PlanItem> Items;
    for (const RegionProfileEntry &E : Profile.entries()) {
      if (!E.Executed || M.Regions[E.Id].Kind == RegionKind::Body)
        continue;
      if (Opts.Excluded.count(E.Id))
        continue;
      if (E.CoveragePct < Opts.MinCoveragePct)
        continue;
      LoopVerdict V = staticVerdictOf(Opts, E.Id);
      if (E.SelfParallelism < Opts.MinSelfParallelism &&
          !(V == LoopVerdict::ProvablyReduction &&
            E.avgIterations() >= Opts.MinSelfParallelism))
        continue;
      if (V == LoopVerdict::ProvablySerial)
        continue;
      Items.push_back(makePlanItem(Profile, E.Id));
    }
    return finishPlan(name(), std::move(Items), Opts);
  }
};

} // namespace

std::unique_ptr<Personality> kremlin::makeOpenMPPersonality() {
  return std::make_unique<OpenMPPersonality>();
}
std::unique_ptr<Personality> kremlin::makeCilkPersonality() {
  return std::make_unique<CilkPersonality>();
}
std::unique_ptr<Personality> kremlin::makeWorkOnlyPersonality() {
  return std::make_unique<WorkOnlyPersonality>();
}
std::unique_ptr<Personality> kremlin::makeSelfPFilterPersonality() {
  return std::make_unique<SelfPFilterPersonality>();
}

std::unique_ptr<Personality>
kremlin::makePersonality(const std::string &Name) {
  if (Name == "openmp")
    return makeOpenMPPersonality();
  if (Name == "cilk")
    return makeCilkPersonality();
  if (Name == "work")
    return makeWorkOnlyPersonality();
  if (Name == "selfp")
    return makeSelfPFilterPersonality();
  return nullptr;
}

std::string kremlin::printPlan(const Module &M, const Plan &P,
                               size_t MaxRows) {
  std::string Out = formatString(
      "Parallelism plan (personality=%s, est. program speedup %.2fx)\n",
      P.Personality.c_str(), P.EstProgramSpeedup);
  Out += formatString("%-4s %-28s %9s %9s %10s %8s\n", "#", "File (lines)",
                      "Self-P", "Cov (%)", "Type", "Static");
  size_t Rows = std::min(MaxRows, P.Items.size());
  for (size_t I = 0; I < Rows; ++I) {
    const PlanItem &Item = P.Items[I];
    const StaticRegion &R = M.Regions[Item.Region];
    Out += formatString(
        "%-4zu %-28s %9.1f %9.2f %10s %8s\n", I + 1, R.sourceSpan().c_str(),
        Item.SelfP, Item.CoveragePct, loopClassName(Item.Class),
        Item.Static == LoopVerdict::Unknown ? "-"
                                            : loopVerdictName(Item.Static));
  }
  if (P.Items.size() > Rows)
    Out += formatString("... (%zu more)\n", P.Items.size() - Rows);
  return Out;
}
