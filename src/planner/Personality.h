//===- planner/Personality.h - Planner personalities -------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Planner personalities (paper §2.3, §5): a personality combines the
/// profile's metrics with parallelization-system and machine constraints to
/// produce an ordered plan. Implemented personalities:
///
///  - OpenMPPersonality (§5.1): loop-focused; forbids nested parallel
///    regions (at most one plan region per root-leaf path); thresholds
///    SP >= 5.0, ideal whole-program speedup >= 0.1% (DOALL) / 3%
///    (DOACROSS); reduction loops must carry enough work to amortize
///    OpenMP's reduction overhead; region selection by bottom-up dynamic
///    programming (parent vs. the sum of its children's best plans — the
///    ft/lu case where greedy fails).
///  - CilkPersonality (§5.2): nesting-aware, lower thresholds.
///  - WorkOnlyPersonality: the gprof-style baseline (coverage only) —
///    Figure 9's "work" bar.
///  - SelfPFilterPersonality: coverage + self-parallelism cutoff, no
///    system model — Figure 9's "self parallelism" bar.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_PLANNER_PERSONALITY_H
#define KREMLIN_PLANNER_PERSONALITY_H

#include "analysis/StaticDependence.h"
#include "planner/Plan.h"
#include "planner/RegionTree.h"
#include "profile/ParallelismProfile.h"

#include <map>
#include <memory>
#include <set>
#include <string>

namespace kremlin {

/// Tunable thresholds. Defaults are the paper's published settings.
struct PlannerOptions {
  /// Minimum self-parallelism for a region to be exploited (§5.1: 5.0).
  double MinSelfParallelism = 5.0;
  /// Minimum ideal whole-program speedup for a DOALL region, in percent
  /// (§5.1: 0.1%).
  double MinDoallSpeedupPct = 0.1;
  /// Minimum ideal whole-program speedup for a DOACROSS region, in percent
  /// (§5.1: 3%).
  double MinDoacrossSpeedupPct = 3.0;
  /// Reduction loops need this much average work per dynamic instance to
  /// amortize OpenMP reduction overhead (the art/ammp-vs-ep constraint).
  double MinReductionWork = 5000.0;
  /// Regions the user declared too hard to parallelize (exclusion-list
  /// replanning, §3).
  std::set<RegionId> Excluded;
  /// WorkOnly/SelfPFilter baselines: minimum coverage percent to keep a
  /// region on the hotspot list.
  double MinCoveragePct = 0.1;
  /// Ablation: replace the OpenMP planner's bottom-up DP with the naive
  /// greedy algorithm §5.1 describes (repeatedly select the region with
  /// the largest potential speedup, excluding its ancestors/descendants).
  bool Greedy = false;
  /// Static loop-dependence verdicts by region (from the lint/analyze
  /// stage). ProvablySerial regions are demoted by parallelism-aware
  /// personalities; other verdicts annotate plan items for the UI.
  std::map<RegionId, LoopVerdict> StaticVerdicts;
};

/// A planning strategy. Stateless; plan() may be called repeatedly.
class Personality {
public:
  virtual ~Personality() = default;

  virtual std::string name() const = 0;

  /// Produces an ordered plan for \p Profile under \p Opts.
  virtual Plan plan(const ParallelismProfile &Profile,
                    const PlannerOptions &Opts) const = 0;
};

/// §5.1's OpenMP planner.
std::unique_ptr<Personality> makeOpenMPPersonality();
/// §5.2's Cilk++ planner.
std::unique_ptr<Personality> makeCilkPersonality();
/// gprof-style coverage-only baseline (Figure 9 "work").
std::unique_ptr<Personality> makeWorkOnlyPersonality();
/// Coverage + self-parallelism filter (Figure 9 "self parallelism").
std::unique_ptr<Personality> makeSelfPFilterPersonality();

/// Looks a personality up by name ("openmp", "cilk", "work", "selfp");
/// returns nullptr for unknown names.
std::unique_ptr<Personality> makePersonality(const std::string &Name);

/// Shared helper: the PlanItem metrics for region \p R.
PlanItem makePlanItem(const ParallelismProfile &Profile, RegionId R);

} // namespace kremlin

#endif // KREMLIN_PLANNER_PERSONALITY_H
