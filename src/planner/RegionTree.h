//===- planner/RegionTree.h - Planning region tree ---------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The region tree planners run their bottom-up algorithms over. Built from
/// the profile's observed region graph: every executed candidate region
/// (Function or Loop — Body regions are measurement-internal) is attached
/// to its nearest candidate ancestor along primary (max-work) parent edges.
/// Functions called from several regions are attached to the heaviest call
/// site; recursion cycles are broken by attaching to the root.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_PLANNER_REGIONTREE_H
#define KREMLIN_PLANNER_REGIONTREE_H

#include "profile/ParallelismProfile.h"

#include <vector>

namespace kremlin {

/// Tree of candidate regions for planning.
class PlanningTree {
public:
  /// Builds the tree for \p Profile. The root is the profiled program's
  /// outermost region (main's Function region).
  explicit PlanningTree(const ParallelismProfile &Profile);

  RegionId root() const { return Root; }

  /// Candidate children of \p R in the tree.
  const std::vector<RegionId> &children(RegionId R) const {
    return Children[R];
  }

  /// Tree parent of candidate \p R (NoRegion for the root / non-members).
  RegionId parent(RegionId R) const { return Parent[R]; }

  /// All candidate regions in the tree, preorder from the root.
  const std::vector<RegionId> &preorder() const { return Preorder; }

  bool containsRegion(RegionId R) const {
    return R < InTree.size() && InTree[R];
  }

private:
  RegionId Root = NoRegion;
  std::vector<std::vector<RegionId>> Children;
  std::vector<RegionId> Parent;
  std::vector<RegionId> Preorder;
  std::vector<char> InTree;
};

} // namespace kremlin

#endif // KREMLIN_PLANNER_REGIONTREE_H
