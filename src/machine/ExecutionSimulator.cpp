//===- machine/ExecutionSimulator.cpp -------------------------------------===//

#include "machine/ExecutionSimulator.h"

#include <algorithm>
#include <cmath>

using namespace kremlin;

ExecutionSimulator::ExecutionSimulator(const ParallelismProfile &Profile,
                                       MachineConfig Cfg)
    : Profile(Profile), Cfg(std::move(Cfg)), Tree(Profile) {}

double ExecutionSimulator::serialTime() const {
  return static_cast<double>(Profile.programWork());
}

/// Time of region \p R's whole dynamic footprint (all instances).
double ExecutionSimulator::regionTime(RegionId R,
                                      const std::vector<char> &InPlan,
                                      unsigned Cores,
                                      double CoveredFrac) const {
  const RegionProfileEntry &E = Profile.entry(R);
  double Work = static_cast<double>(E.TotalWork);
  if (Work <= 0.0)
    return 0.0;

  if (InPlan[R]) {
    // Parallel execution: lower-bounded by the critical path and by
    // work/min(SP, cores).
    double Sp = std::min(E.SelfParallelism, static_cast<double>(Cores));
    if (Sp < 1.0)
      Sp = 1.0;
    double Ideal = std::max(static_cast<double>(E.TotalCp), Work / Sp);

    // NUMA migration: expensive while little of the program is parallel,
    // amortized once parallel coverage saturates.
    double Remaining =
        std::max(0.0, 1.0 - CoveredFrac / Cfg.MigrationSaturation);
    double Numa = 1.0 + Cfg.MigrationPenalty * Remaining;

    double Instances = static_cast<double>(E.Instances);
    double Chunks = std::min(Sp, static_cast<double>(Cores));
    double Overhead = Instances * Cfg.SpawnCost +
                      Instances * Chunks * Cfg.ChunkSyncCost;
    if (Profile.module().Regions[R].HasReduction)
      Overhead += Instances * Cfg.ReductionCost *
                  std::log2(std::max(2.0, static_cast<double>(Cores)));
    return Ideal * Numa + Overhead;
  }

  // Serial here; descend for parallel descendants.
  double ChildTime = 0.0;
  double ChildWork = 0.0;
  for (RegionId C : Tree.children(R)) {
    ChildTime += regionTime(C, InPlan, Cores, CoveredFrac);
    ChildWork += static_cast<double>(Profile.entry(C).TotalWork);
  }
  double SelfWork = std::max(0.0, Work - ChildWork);
  return SelfWork + ChildTime;
}

double
ExecutionSimulator::simulateTime(const std::vector<RegionId> &PlanRegions,
                                 unsigned Cores) const {
  if (Tree.root() == NoRegion)
    return 0.0;
  std::vector<char> InPlan(Profile.module().Regions.size(), 0);
  double CoveredFrac = 0.0;
  for (RegionId R : PlanRegions) {
    if (R < InPlan.size() && Tree.containsRegion(R)) {
      InPlan[R] = 1;
      CoveredFrac += Profile.entry(R).CoveragePct / 100.0;
    }
  }
  CoveredFrac = std::min(CoveredFrac, 1.0);
  return regionTime(Tree.root(), InPlan, Cores, CoveredFrac);
}

SimOutcome
ExecutionSimulator::evaluatePlan(const std::vector<RegionId> &PlanRegions) const {
  SimOutcome Out;
  Out.SerialTime = serialTime();
  Out.BestTime = Out.SerialTime;
  Out.BestCores = 1;
  for (unsigned Cores : Cfg.CoreCounts) {
    double T = simulateTime(PlanRegions, Cores);
    if (T < Out.BestTime) {
      Out.BestTime = T;
      Out.BestCores = Cores;
    }
  }
  return Out;
}

std::vector<double> ExecutionSimulator::cumulativeTimeReduction(
    const std::vector<RegionId> &OrderedPlan) const {
  std::vector<double> Reductions;
  Reductions.reserve(OrderedPlan.size());
  double Serial = serialTime();
  if (Serial <= 0.0)
    return Reductions;
  std::vector<RegionId> Prefix;
  for (RegionId R : OrderedPlan) {
    Prefix.push_back(R);
    SimOutcome Out = evaluatePlan(Prefix);
    Reductions.push_back((Serial - Out.BestTime) / Serial);
  }
  return Reductions;
}
