//===- machine/ExecutionSimulator.h - Parallel machine model ----*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The machine model that stands in for the paper's 32-core AMD NUMA
/// testbed (§6.1). Given a profile and a plan (the set of parallelized
/// regions), it simulates whole-program execution time at a core count:
///
///  - a parallelized region's ideal time is bounded below by its measured
///    critical path and by work / min(SP, cores);
///  - each dynamic instance pays a spawn cost, each worker chunk a
///    synchronization cost, and reduction loops a log2(cores) combine tree;
///  - a NUMA data-migration factor inflates parallel time and *decays with
///    the fraction of program work already parallelized* — reproducing the
///    §6.2 observation that "as more of the program is parallelized, less
///    data migration happens", which makes later plan entries look
///    super-linear in Figure 7;
///  - everything outside parallelized subtrees runs serially at measured
///    work.
///
/// The evaluation protocol mirrors §6.1: run every core configuration in
/// {1,2,4,8,16,32} and report the best.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_MACHINE_EXECUTIONSIMULATOR_H
#define KREMLIN_MACHINE_EXECUTIONSIMULATOR_H

#include "planner/Plan.h"
#include "planner/RegionTree.h"
#include "profile/ParallelismProfile.h"

#include <vector>

namespace kremlin {

/// Cost parameters, in the profile's latency units.
struct MachineConfig {
  std::vector<unsigned> CoreCounts = {1, 2, 4, 8, 16, 32};
  /// Cost of entering a parallel section (thread wake-up / fork), per
  /// dynamic region instance.
  double SpawnCost = 60.0;
  /// Synchronization cost per worker chunk per instance (implicit barrier).
  double ChunkSyncCost = 2.0;
  /// Reduction combine cost per tree level (log2(cores) levels).
  double ReductionCost = 50.0;
  /// NUMA migration inflation at zero parallel coverage (0.35 = +35%).
  double MigrationPenalty = 0.35;
  /// Parallel coverage fraction at which migration cost is fully amortized.
  double MigrationSaturation = 0.75;
};

/// Result of simulating one plan at its best core configuration.
struct SimOutcome {
  double SerialTime = 0.0;
  double BestTime = 0.0;
  unsigned BestCores = 1;
  double speedup() const {
    return BestTime > 0.0 ? SerialTime / BestTime : 1.0;
  }
};

/// Simulates plans over one profile.
class ExecutionSimulator {
public:
  ExecutionSimulator(const ParallelismProfile &Profile,
                     MachineConfig Cfg = MachineConfig());

  /// Whole-program time with \p PlanRegions parallelized on \p Cores.
  double simulateTime(const std::vector<RegionId> &PlanRegions,
                      unsigned Cores) const;

  /// Serial execution time (no parallel regions).
  double serialTime() const;

  /// Best configuration over MachineConfig::CoreCounts.
  SimOutcome evaluatePlan(const std::vector<RegionId> &PlanRegions) const;

  /// Fraction of execution time removed by each successive plan prefix:
  /// Result[k] = (T_serial - T(prefix of k+1 regions)) / T_serial.
  /// The Figure 7 marginal-benefit series.
  std::vector<double>
  cumulativeTimeReduction(const std::vector<RegionId> &OrderedPlan) const;

  const MachineConfig &config() const { return Cfg; }
  const ParallelismProfile &profile() const { return Profile; }

private:
  const ParallelismProfile &Profile;
  MachineConfig Cfg;
  PlanningTree Tree;

  double regionTime(RegionId R, const std::vector<char> &InPlan,
                    unsigned Cores, double CoveredFrac) const;
};

} // namespace kremlin

#endif // KREMLIN_MACHINE_EXECUTIONSIMULATOR_H
