//===- suite/PaperSuite.cpp -----------------------------------------------===//

#include "suite/PaperSuite.h"

#include "support/ErrorHandling.h"

#include <algorithm>

using namespace kremlin;

namespace {

// --- Site templates ---------------------------------------------------------

/// Hot fully parallel loop: in both plans.
SiteSpec hotDoall(unsigned Iters = 256, unsigned Work = 8) {
  SiteSpec S;
  S.Kind = SiteKind::HotDoall;
  S.Iters = Iters;
  S.Work = Work;
  S.ManualOuter = true;
  return S;
}

/// Hot parallel loop only Kremlin found (missed by the third party).
SiteSpec kremlinOnlyDoall(unsigned Iters = 256, unsigned Work = 8) {
  SiteSpec S = hotDoall(Iters, Work);
  S.ManualOuter = false;
  return S;
}

/// Negligible-benefit loop MANUAL parallelized anyway (fails Kremlin's
/// ideal-speedup threshold).
SiteSpec smallDoall() {
  SiteSpec S;
  S.Kind = SiteKind::SmallDoall;
  S.Iters = 6;
  S.Work = 1;
  S.ManualOuter = true;
  return S;
}

/// Mid-size DOACROSS MANUAL kept; below Kremlin's 3% DOACROSS threshold
/// but still mildly profitable on the machine — the source of MANUAL's
/// ~3.8% average edge.
SiteSpec manualDoacross() {
  SiteSpec S;
  S.Kind = SiteKind::Doacross;
  S.Iters = 64;
  S.Work = 12;
  S.ManualOuter = true;
  return S;
}

/// Hot DOACROSS that clears the 3% whole-program threshold.
SiteSpec hotDoacross() {
  SiteSpec S;
  S.Kind = SiteKind::Doacross;
  S.Iters = 256;
  S.Work = 12;
  S.ManualOuter = false; // The third party missed it (ammp shape).
  return S;
}

/// Hot loop whose self-parallelism sits just below Kremlin's 5.0 cutoff:
/// MANUAL parallelized it profitably anyway (min(SP, cores)-way parallel is
/// still real speedup) — the honest mechanism behind art's 0.88x.
SiteSpec lowSpDoacross(unsigned Iters = 512) {
  SiteSpec S;
  S.Kind = SiteKind::Doacross;
  S.Iters = Iters;
  S.Work = 4; // SP = (3*4+6)/4 = 4.5 < 5.0.
  S.ManualOuter = true;
  return S;
}

/// Reduction with too little work to amortize OpenMP reduction overhead.
SiteSpec reductionLight(bool InManual) {
  SiteSpec S;
  S.Kind = SiteKind::ReductionLight;
  S.Iters = 16;
  S.Work = 1;
  S.ManualOuter = InManual;
  return S;
}

/// Coarse outer loop Kremlin recommends; MANUAL parallelized the inner
/// loops instead (sp / is / mg shape).
SiteSpec coarseNest(unsigned Outer = 32, unsigned Inner = 32,
                    unsigned InnerCount = 2, unsigned Work = 4,
                    bool InnerDoacross = false) {
  SiteSpec S;
  S.Kind = SiteKind::CoarseNest;
  S.Iters = Outer;
  S.InnerIters = Inner;
  S.InnerCount = InnerCount;
  S.Work = Work;
  S.ManualOuter = false;
  S.ManualInner = true;
  S.InnerDoacross = InnerDoacross;
  return S;
}

/// DOACROSS parent whose DOALL children collectively beat it — the ft/lu
/// case where greedy planning picks the wrong region.
SiteSpec childrenNest(unsigned InnerCount = 3) {
  SiteSpec S;
  S.Kind = SiteKind::ChildrenNest;
  S.Iters = 12;
  S.InnerIters = 96;
  S.InnerCount = InnerCount;
  S.Work = 10;
  S.ManualOuter = false;
  S.ManualInner = true;
  return S;
}

/// Adds \p Count hot DOALL loops with a skewed size distribution: a few
/// large regions and a tail of smaller ones, giving the concave
/// benefit-vs-plan-fraction curve of Figure 8.
void addHotDoalls(BenchmarkSpec &B, unsigned Count) {
  static const unsigned Iters[] = {512, 320, 224, 160, 96};
  static const unsigned Work[] = {10, 8, 8, 6, 6};
  for (unsigned I = 0; I < Count; ++I)
    B.add(hotDoall(Iters[I % 5], Work[I % 5]));
}

/// Cold/serial background sites: region-count texture for Figure 9 / §6.2.
/// The kinds stratify the coverage/self-parallelism landscape relative to
/// the benchmark's total work (\p WarmIters scales with program size):
///  - serial chains and low-SP DOACROSS loops pass the gprof work cutoff
///    but fail the self-parallelism filter (SP ~ 1 / ~3);
///  - warm DOACROSS loops (SP ~ 10) pass both work and SP filters yet are
///    excluded by the planner's 3% DOACROSS speedup threshold;
///  - cold DOALLs fall below the work cutoff entirely.
void addFiller(BenchmarkSpec &B, unsigned Count, unsigned WarmIters) {
  unsigned W = std::max(4u, WarmIters);
  for (unsigned I = 0; I < Count; ++I) {
    SiteSpec S;
    switch (I % 10) {
    case 0: // Warm serial chain: hotspot list yes, SP filter no.
      S.Kind = SiteKind::SerialChain;
      S.Iters = 4 * W;
      S.Work = 2;
      break;
    case 2: // Warm low-SP DOACROSS: hotspot yes, SP filter no.
      S.Kind = SiteKind::Doacross;
      S.Iters = 2 * W;
      S.Work = 2;
      break;
    case 3:
    case 8:
      // Warm DOACROSS nobody parallelized: passes work + SP filters,
      // fails the 3% DOACROSS threshold at any modest coverage (robust
      // across program sizes, unlike a warm DOALL whose 0.1% band is
      // razor thin). At least 16 iterations so SP clears the 5.0 cutoff.
      S.Kind = SiteKind::Doacross;
      S.Iters = std::max(16u, W);
      S.Work = 12;
      break;
    case 5: // Tiny serial chain: below the work cutoff.
      S.Kind = SiteKind::SerialChain;
      S.Iters = 8;
      S.Work = 2;
      break;
    case 7: // Tiny ILP-heavy serial loop: below the work cutoff;
    case 9: // total-parallelism high, self-parallelism ~ 1 (the §6.2
            // false-positive class that HCPA exists to catch).
      S.Kind = SiteKind::IlpSerial;
      S.Iters = 2;
      S.Work = 1;
      break;
    default: // Cases 1, 4, 6: cold one-shot init loops.
      S.Kind = SiteKind::ColdDoall;
      S.Iters = 12;
      S.Work = 1;
      break;
    }
    B.Sites.push_back(S);
  }
}

} // namespace

const std::vector<std::string> &kremlin::paperBenchmarkNames() {
  static const std::vector<std::string> Names = {
      "bt", "cg", "ep", "ft", "is", "lu", "mg", "sp",
      "ammp", "art", "equake"};
  return Names;
}

PaperFacts kremlin::paperFacts(const std::string &Name) {
  // Figure 6(a) plan sizes and Figure 6(b) relative speedups.
  if (Name == "ammp")
    return {6, 3, 2, 0.97};
  if (Name == "art")
    return {3, 4, 1, 0.88};
  if (Name == "equake")
    return {10, 6, 6, 0.98};
  if (Name == "bt")
    return {54, 27, 27, 0.96};
  if (Name == "cg")
    return {22, 9, 9, 0.97};
  if (Name == "ep")
    return {1, 1, 1, 1.00};
  if (Name == "ft")
    return {6, 6, 5, 0.96};
  if (Name == "is")
    return {1, 1, 0, 1.46};
  if (Name == "lu")
    return {28, 11, 11, 0.97};
  if (Name == "mg")
    return {10, 8, 7, 0.95};
  if (Name == "sp")
    return {70, 58, 47, 1.85};
  kremlin_fatal("unknown paper benchmark");
}

BenchmarkSpec kremlin::paperBenchmarkSpec(const std::string &Name) {
  BenchmarkSpec B;
  B.Name = Name;
  B.Timesteps = 4;
  B.SitesPerKernel = 4;

  if (Name == "bt") {
    // MANUAL 54 / Kremlin 27 / overlap 27.
    addHotDoalls(B, 27);
    B.add(manualDoacross(), 2);
    B.add(smallDoall(), 25);
    addFiller(B, 280, 35);
  } else if (Name == "cg") {
    // MANUAL 22 / Kremlin 9 / overlap 9.
    addHotDoalls(B, 9);
    B.add(manualDoacross(), 1);
    B.add(smallDoall(), 12);
    addFiller(B, 130, 11);
  } else if (Name == "ep") {
    // MANUAL 1 / Kremlin 1 / overlap 1: one huge reduction loop.
    SiteSpec S;
    S.Kind = SiteKind::ReductionHeavy;
    S.Iters = 8192;
    S.Work = 8;
    S.ManualOuter = true;
    B.add(S);
    addFiller(B, 40, 7);
  } else if (Name == "ft") {
    // MANUAL 6 / Kremlin 6 / overlap 5; includes the DP-vs-greedy nest.
    B.add(childrenNest(3));
    B.add(hotDoall(), 2);
    B.add(kremlinOnlyDoall(64, 8), 1);
    B.add(lowSpDoacross(128), 1);
    addFiller(B, 150, 20);
  } else if (Name == "is") {
    // MANUAL 1 / Kremlin 1 / overlap 0: the coarse-vs-fine win (1.46x).
    B.Timesteps = 2;
    B.add(coarseNest(/*Outer=*/64, /*Inner=*/128, /*InnerCount=*/1,
                     /*Work=*/12, /*InnerDoacross=*/true));
    addFiller(B, 55, 46);
  } else if (Name == "lu") {
    // MANUAL 28 / Kremlin 11 / overlap 11.
    B.add(childrenNest(3));
    addHotDoalls(B, 8);
    B.add(manualDoacross(), 2);
    B.add(smallDoall(), 15);
    addFiller(B, 240, 29);
  } else if (Name == "mg") {
    // MANUAL 10 / Kremlin 8 / overlap 7: Kremlin's extra pick is modest,
    // MANUAL's low-SP loop gives it the slight edge of Figure 6(b).
    addHotDoalls(B, 7);
    B.add(kremlinOnlyDoall(64, 8), 1);
    B.add(lowSpDoacross(256), 1);
    B.add(smallDoall(), 2);
    addFiller(B, 170, 11);
  } else if (Name == "sp") {
    // MANUAL 70 / Kremlin 58 / overlap 47: coarse regions MANUAL missed
    // give Kremlin its 1.85x win.
    addHotDoalls(B, 47);
    for (unsigned I = 0; I < 11; ++I)
      B.add(coarseNest(32, 48, /*InnerCount=*/2, /*Work=*/8,
                       /*InnerDoacross=*/true));
    B.add(smallDoall(), 1);
    addFiller(B, 360, 24);
  } else if (Name == "ammp") {
    // MANUAL 6 / Kremlin 3 / overlap 2; light reductions MANUAL kept.
    B.add(hotDoall(512, 12), 2);
    B.add(hotDoacross(), 1);
    B.add(lowSpDoacross(512), 1);
    B.add(reductionLight(/*InManual=*/true), 1);
    B.add(smallDoall(), 2);
    addFiller(B, 140, 9);
  } else if (Name == "art") {
    // MANUAL 3 / Kremlin 4 / overlap 1. MANUAL's two low-SP hot loops give
    // it the edge Figure 6(b) reports (0.88x).
    B.add(hotDoall(512, 12), 1);
    B.add(kremlinOnlyDoall(128, 8), 3);
    B.add(lowSpDoacross(384), 2);
    addFiller(B, 85, 7);
  } else if (Name == "equake") {
    // MANUAL 10 / Kremlin 6 / overlap 6.
    addHotDoalls(B, 6);
    B.add(smallDoall(), 4);
    addFiller(B, 150, 8);
  } else {
    kremlin_fatal("unknown paper benchmark");
  }
  return B;
}

GeneratedBenchmark kremlin::generatePaperBenchmark(const std::string &Name) {
  return generateBenchmark(paperBenchmarkSpec(Name));
}

Expected<GeneratedBenchmark>
kremlin::tryGeneratePaperBenchmark(const std::string &Name) {
  const std::vector<std::string> &Known = paperBenchmarkNames();
  bool Found = false;
  for (const std::string &K : Known)
    Found |= K == Name;
  if (!Found) {
    std::string Valid;
    for (const std::string &K : Known)
      Valid += (Valid.empty() ? "" : " ") + K;
    return Status::error(ErrorCode::InvalidArgument,
                         "unknown paper benchmark (expected one of: " + Valid +
                             ")")
        .withInput(Name);
  }
  return generatePaperBenchmark(Name);
}

std::string kremlin::trackingSource() {
  // A MiniC rendition of the SD-VBS feature-tracking pipeline used in
  // Figures 2 and 3: two blur passes, Sobel passes, patch interpolation
  // (few iterations => the low Self-P of Figure 3's row 3), corner
  // scoring, and the fillFeatures nest of Figure 2 whose outer loops are
  // serial (argmin accumulation) while only the innermost k loop is
  // parallel. Loop weights approximate Figure 3's coverage column.
  return R"(// tracking.c - SD-VBS feature tracking (synthetic rendition)
int img[4096];
int blur[4096];
int dx[4096];
int dy[4096];
int patch[1024];
int lambda[256];
int feat[96];
int corners[256];

void imageBlur() {
  for (int i = 0; i < 128; i = i + 1) {
    int x = img[i * 16 % 4096] * 4;
    x = x + img[(i * 16 + 1) % 4096] * 6;
    x = x + img[(i * 16 + 2) % 4096] * 4;
    x = x / 16 + i;
    x = x * 3 + x / 7;
    x = x + x % 29;
    blur[i * 16 % 4096] = x;
  }
  for (int i = 0; i < 128; i = i + 1) {
    int x = blur[i * 16 % 4096] * 4;
    x = x + blur[(i * 16 + 3) % 4096] * 6;
    x = x + blur[(i * 16 + 5) % 4096] * 4;
    x = x / 16 + i * 2;
    x = x * 3 + x / 5;
    blur[(i * 16 + 7) % 4096] = x;
  }
}

void calcSobel_dX() {
  for (int i = 0; i < 104; i = i + 1) {
    int x = blur[i * 8 % 4096] - blur[(i * 8 + 2) % 4096];
    x = x * 2 + blur[(i * 8 + 4) % 4096];
    x = x + x / 9;
    x = x * 5 - x / 3;
    dx[i * 8 % 4096] = x;
  }
  for (int i = 0; i < 104; i = i + 1) {
    int x = dx[i * 8 % 4096] + dx[(i * 8 + 1) % 4096] * 2;
    x = x - dx[(i * 8 + 3) % 4096];
    x = x + x / 11;
    x = x * 4 - x / 7;
    dx[(i * 8 + 5) % 4096] = x;
  }
}

void calcSobel_dY() {
  for (int i = 0; i < 96; i = i + 1) {
    int x = blur[i * 8 % 4096] - blur[(i * 8 + 16) % 4096];
    x = x * 2 + blur[(i * 8 + 32) % 4096];
    x = x + x / 13;
    dy[i * 8 % 4096] = x;
  }
}

void getInterpPatch() {
  for (int i = 0; i < 28; i = i + 1) {
    int x = dx[i * 32 % 4096] * 3 + dy[(i * 32 + 8) % 4096];
    x = x * 7 + x / 3;
    x = x + x % 17;
    x = x * 2 + x / 9;
    x = x - x / 4;
    x = x * 3 + 11;
    x = x + x / 6;
    x = x * 2 + x % 23;
    x = x + x / 5;
    x = x * 3 - x / 8;
    x = x + x % 31;
    x = x * 2 + x / 3;
    x = x - x / 9;
    x = x * 5 + 7;
    x = x + x / 2;
    x = x * 3 + x % 19;
    x = x + x / 7;
    x = x * 2 - x / 11;
    x = x + x % 37;
    x = x * 3 + x / 4;
    x = x - x / 13;
    x = x * 2 + 5;
    x = x + x / 3;
    x = x * 5 - x % 11;
    x = x + x / 8;
    x = x * 2 + x % 7;
    x = x - x / 5;
    x = x * 3 + 13;
    x = x + x / 9;
    x = x * 2 - x % 29;
    x = x + x / 6;
    x = x * 3 + x % 41;
    x = x - x / 7;
    x = x * 2 + 9;
    x = x + x / 11;
    x = x * 5 - x % 17;
    x = x + x / 2;
    x = x * 2 + x % 5;
    x = x - x / 12;
    x = x * 3 + 21;
    x = x + x / 4;
    x = x * 2 - x % 23;
    x = x + x / 10;
    x = x * 3 + x % 3;
    x = x + x / 14;
    patch[i * 32 % 1024] = x;
  }
}

void findCorners() {
  int score = corners[0];
  for (int i = 1; i < 96; i = i + 1) {
    score = score * 2 + corners[i] / (score % 5 + 3);
    corners[i] = score;
  }
}

void trackFeatures() {
  int c = img[0] + 1;
  for (int i = 1; i < 320; i = i + 1) {
    c = c * 3 + img[i % 4096] / (c % 7 + 2);
    c = c + c / 5 - blur[i % 4096] % 9;
    c = c * 2 - c / (c % 5 + 3);
    c = c + dx[i % 4096] % 13;
    c = c * 3 - c / (c % 11 + 4);
    c = c + dy[i % 4096] % 7;
    c = c * 2 + c / 9;
    c = c - patch[i % 1024] % 5;
    c = c * 3 + c / (c % 3 + 2);
    c = c + c % 19;
    corners[i % 256] = c;
  }
}

void fillFeatures() {
  int best = 0;
  for (int i = 0; i < 4; i = i + 1) {
    for (int j = 0; j < 4; j = j + 1) {
      int curr = lambda[i * 4 + j] + best;
      for (int k = 0; k < 8; k = k + 1) {
        feat[k % 96] = feat[k % 96] + curr * k + k / 3;
      }
      best = best + curr % 97;
    }
  }
  lambda[0] = best;
}

int main() {
  for (int i = 0; i < 256; i = i + 1) {
    lambda[i] = (i * 37) % 251;
  }
  for (int f = 0; f < 4; f = f + 1) {
    imageBlur();
    calcSobel_dX();
    calcSobel_dY();
    getInterpPatch();
    trackFeatures();
    findCorners();
    fillFeatures();
  }
  return lambda[0] % 100;
}
)";
}
