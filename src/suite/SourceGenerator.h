//===- suite/SourceGenerator.h - Spec to MiniC source ------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits MiniC source for a BenchmarkSpec and records where every loop
/// landed (source line, role, MANUAL membership), so that after
/// compilation the MANUAL plan can be mapped onto static region ids.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUITE_SOURCEGENERATOR_H
#define KREMLIN_SUITE_SOURCEGENERATOR_H

#include "ir/Module.h"
#include "suite/BenchmarkSpec.h"

#include <string>
#include <vector>

namespace kremlin {

/// One emitted loop's bookkeeping.
struct GeneratedLoop {
  /// 1-based source line of the `for` keyword (matches the Loop region's
  /// StartLine).
  unsigned Line = 0;
  unsigned SiteIndex = 0;
  SiteKind Kind = SiteKind::HotDoall;
  /// True for the site's outer loop, false for an inner loop.
  bool IsOuter = true;
  /// This loop is part of the MANUAL parallelization.
  bool Manual = false;
};

/// A generated benchmark: source plus loop map.
struct GeneratedBenchmark {
  std::string Name;
  std::string Source;
  std::vector<GeneratedLoop> Loops;

  /// Source lines of MANUAL-parallelized loops.
  std::vector<unsigned> manualLines() const;
};

/// Generates MiniC source from \p Spec. Deterministic.
GeneratedBenchmark generateBenchmark(const BenchmarkSpec &Spec);

/// Maps loop start lines to Loop-region ids in a compiled module. Lines
/// with no matching executed Loop region are skipped.
std::vector<RegionId> loopRegionsAtLines(const Module &M,
                                         const std::vector<unsigned> &Lines);

} // namespace kremlin

#endif // KREMLIN_SUITE_SOURCEGENERATOR_H
