//===- suite/PaperSuite.h - The paper's benchmark suite ----------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The 11 evaluation programs of the paper — NPB (bt cg ep ft is lu mg sp)
/// and the C-language SPEC OMP2001 programs (ammp art equake) — as
/// synthetic BenchmarkSpecs whose region structure mirrors the published
/// facts (MANUAL plan sizes of Figure 6(a), the coarse-vs-fine sp/is shape,
/// the ft/lu parent-vs-children planning case, the art/ammp underweight
/// reductions, ep's single heavy reduction), plus the SD-VBS feature
/// `tracking` program of Figures 2-3.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUITE_PAPERSUITE_H
#define KREMLIN_SUITE_PAPERSUITE_H

#include "suite/BenchmarkSpec.h"
#include "suite/SourceGenerator.h"
#include "support/Status.h"

#include <string>
#include <vector>

namespace kremlin {

/// Paper-reported numbers used by the bench harnesses for side-by-side
/// reporting (Figure 6(a)).
struct PaperFacts {
  unsigned ManualPlanSize = 0;  ///< Regions in the MANUAL parallelization.
  unsigned KremlinPlanSize = 0; ///< Regions in Kremlin's plan.
  unsigned Overlap = 0;         ///< |MANUAL ∩ Kremlin|.
  /// Relative speedup (Kremlin / MANUAL) read off Figure 6(b).
  double RelativeSpeedup = 1.0;
};

/// Names of the 11 paper benchmarks, NPB first.
const std::vector<std::string> &paperBenchmarkNames();

/// The spec for \p Name; aborts on unknown names.
BenchmarkSpec paperBenchmarkSpec(const std::string &Name);

/// Generates \p Name's MiniC source + loop map.
GeneratedBenchmark generatePaperBenchmark(const std::string &Name);

/// Like generatePaperBenchmark but reports unknown names as a value
/// (InvalidArgument listing the valid names) — for user-supplied input.
Expected<GeneratedBenchmark> tryGeneratePaperBenchmark(const std::string &Name);

/// Paper-reported facts for \p Name.
PaperFacts paperFacts(const std::string &Name);

/// The hand-written `tracking` program (Figures 2-3).
std::string trackingSource();

} // namespace kremlin

#endif // KREMLIN_SUITE_PAPERSUITE_H
