//===- suite/SourceGenerator.cpp ------------------------------------------===//

#include "suite/SourceGenerator.h"

#include "support/ErrorHandling.h"
#include "support/StringUtils.h"

using namespace kremlin;

const char *kremlin::siteKindName(SiteKind Kind) {
  switch (Kind) {
  case SiteKind::HotDoall:
    return "hot-doall";
  case SiteKind::SmallDoall:
    return "small-doall";
  case SiteKind::ColdDoall:
    return "cold-doall";
  case SiteKind::Doacross:
    return "doacross";
  case SiteKind::SerialChain:
    return "serial";
  case SiteKind::IlpSerial:
    return "ilp-serial";
  case SiteKind::ReductionHeavy:
    return "reduction-heavy";
  case SiteKind::ReductionLight:
    return "reduction-light";
  case SiteKind::CoarseNest:
    return "coarse-nest";
  case SiteKind::ChildrenNest:
    return "children-nest";
  }
  return "?";
}

std::vector<unsigned> GeneratedBenchmark::manualLines() const {
  std::vector<unsigned> Lines;
  for (const GeneratedLoop &L : Loops)
    if (L.Manual)
      Lines.push_back(L.Line);
  return Lines;
}

namespace {

/// Text emitter with 1-based line tracking.
class CodeWriter {
public:
  /// Emits one line (newline appended).
  void line(const std::string &Text) {
    Buf += Text;
    Buf += '\n';
    ++Next;
  }
  /// The line number the next emit will land on.
  unsigned nextLine() const { return Next; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
  unsigned Next = 1;
};

/// Emits \p Work dependent arithmetic stages on scalar x. The stage mix
/// cycles so consecutive stages differ; each stage depends on the previous
/// one, so the per-iteration chain length tracks Work.
void emitStages(CodeWriter &W, unsigned Work, const std::string &Indent) {
  static const char *Stages[] = {
      "x = x * 3 + i + 1;",
      "x = x + x / 7;",
      "x = x * 2 - x / 5;",
      "x = x + x % 13 + 2;",
  };
  for (unsigned S = 0; S < Work; ++S)
    W.line(Indent + Stages[S % 4]);
}

/// Emits one site's loops inside a kernel function. \p Array / \p Aux are
/// the site's dedicated global array names.
void emitSite(CodeWriter &W, const SiteSpec &Site, unsigned SiteIndex,
              const std::string &Array, const std::string &Aux,
              std::vector<GeneratedLoop> &Loops) {
  auto Record = [&](bool IsOuter, bool Manual) {
    GeneratedLoop L;
    L.Line = W.nextLine();
    L.SiteIndex = SiteIndex;
    L.Kind = Site.Kind;
    L.IsOuter = IsOuter;
    L.Manual = Manual;
    Loops.push_back(L);
  };
  std::string N = formatString("%u", Site.Iters);
  std::string IN = formatString("%u", Site.InnerIters);

  switch (Site.Kind) {
  case SiteKind::HotDoall:
  case SiteKind::SmallDoall:
    Record(/*IsOuter=*/true, Site.ManualOuter);
    W.line("  for (int i = 0; i < " + N + "; i = i + 1) {");
    W.line("    int x = " + Array + "[i] + t;");
    emitStages(W, Site.Work, "    ");
    W.line("    " + Array + "[i] = x + i;");
    W.line("  }");
    break;

  case SiteKind::ColdDoall:
    W.line("  if (t == 0) {");
    Record(true, Site.ManualOuter);
    W.line("    for (int i = 0; i < " + N + "; i = i + 1) {");
    W.line("      int x = i * 5 + 3;");
    emitStages(W, Site.Work, "      ");
    W.line("      " + Array + "[i] = x;");
    W.line("    }");
    W.line("  }");
    break;

  case SiteKind::Doacross:
    Record(true, Site.ManualOuter);
    W.line("  for (int i = 1; i < " + N + "; i = i + 1) {");
    W.line("    int x = i * 3 + t;");
    emitStages(W, Site.Work, "    ");
    W.line("    " + Array + "[i] = " + Array + "[i - 1] / 4 + x;");
    W.line("  }");
    // Carry the boundary value into the next call: without this, each
    // call's chain would be independent and CPA would (correctly!) let
    // successive time steps pipeline.
    W.line("  " + Array + "[0] = " + Array + "[" +
           formatString("%u", Site.Iters - 1) + "] % 65521;");
    break;

  case SiteKind::SerialChain:
    W.line("  int c" + formatString("%u", SiteIndex) + " = " + Array +
           "[0] + t;");
    Record(true, Site.ManualOuter);
    W.line("  for (int i = 1; i < " + N + "; i = i + 1) {");
    {
      std::string C = formatString("c%u", SiteIndex);
      // Every stage feeds the next through C, and the divisor depends on C
      // itself, so no reduction/induction pattern can legally break it.
      for (unsigned S = 0; S < std::max(1u, Site.Work); ++S)
        W.line("    " + C + " = " + C + " * 3 + " + C + " / (" + C +
               " % 7 + 2);");
      W.line("    " + Array + "[i] = " + C + ";");
    }
    W.line("  }");
    // Boundary carry (see Doacross): chains consecutive calls.
    W.line("  " + Array + "[0] = " + Array + "[" +
           formatString("%u", Site.Iters - 1) + "] % 65521;");
    break;

  case SiteKind::IlpSerial: {
    // Eight independent 4-op chains per iteration, combined by a balanced
    // tree into the loop-carried value: per-iteration work ~ 5-6x the
    // serial path, so work/cp (total-parallelism) is high while
    // self-parallelism stays ~1.
    std::string C = formatString("q%u", SiteIndex);
    W.line("  int " + C + " = " + Array + "[0] + t;");
    Record(true, Site.ManualOuter);
    W.line("  for (int i = 1; i < " + N + "; i = i + 1) {");
    for (unsigned Lane = 1; Lane <= 8; ++Lane) {
      std::string X = formatString("x%u", Lane);
      W.line(formatString("    int %s = %s * %u + %u;", X.c_str(), C.c_str(),
                          Lane + 1, Lane));
      W.line(formatString("    %s = %s + %s / %u;", X.c_str(), X.c_str(),
                          X.c_str(), Lane + 2));
      W.line(formatString("    %s = %s * 2 - %s %% %u;", X.c_str(),
                          X.c_str(), X.c_str(), Lane + 4));
    }
    W.line("    " + C + " = ((x1 + x2) + (x3 + x4)) + "
           "((x5 + x6) + (x7 + x8));");
    W.line("    " + Array + "[i] = " + C + ";");
    W.line("  }");
    // Boundary carry (see Doacross): chains consecutive calls.
    W.line("  " + Array + "[0] = " + Array + "[" +
           formatString("%u", Site.Iters - 1) + "] % 65521;");
    break;
  }

  case SiteKind::ReductionHeavy:
  case SiteKind::ReductionLight: {
    std::string S = formatString("s%u", SiteIndex);
    W.line("  int " + S + " = " + Array + "[0];");
    Record(true, Site.ManualOuter);
    W.line("  for (int i = 0; i < " + N + "; i = i + 1) {");
    W.line("    int x = " + Array + "[i] + t;");
    emitStages(W, Site.Work, "    ");
    W.line("    " + S + " = " + S + " + x;");
    W.line("  }");
    W.line("  " + Array + "[0] = " + S + " % 65536;");
    break;
  }

  case SiteKind::CoarseNest: {
    // Outer DOALL over disjoint slices; per-j self work (double the inner
    // stage count) keeps the outer region's gain above the sum of its
    // inner loops' gains, so the planner recommends the coarse region.
    Record(true, Site.ManualOuter);
    W.line("  for (int j = 0; j < " + N + "; j = j + 1) {");
    W.line("    int x = " + Aux + "[j] + t;");
    W.line("    int i = j;");
    emitStages(W, Site.Work * 2, "    ");
    W.line("    " + Aux + "[j] = x;");
    for (unsigned Inner = 0; Inner < Site.InnerCount; ++Inner) {
      Record(false, Site.ManualInner);
      if (Site.InnerDoacross) {
        // Cross-iteration chain within each slice: the inner loop's SP is
        // capped near (3*Work+8)/4 while the outer j loop stays DOALL.
        W.line("    for (int i2 = 1; i2 < " + IN + "; i2 = i2 + 1) {");
        W.line("      int i = i2;");
        W.line("      int x = i2 * 3 + " + Aux + "[j] + " +
               formatString("%u", Inner) + ";");
        emitStages(W, Site.Work, "      ");
        W.line("      " + Array + "[j * " + IN + " + i2] = " + Array +
               "[j * " + IN + " + i2 - 1] / 4 + x;");
        W.line("    }");
      } else {
        W.line("    for (int i2 = 0; i2 < " + IN + "; i2 = i2 + 1) {");
        W.line("      int i = i2;");
        W.line("      int x = " + Array + "[j * " + IN + " + i2] + " + Aux +
               "[j] + " + formatString("%u", Inner) + ";");
        emitStages(W, Site.Work, "      ");
        W.line("      " + Array + "[j * " + IN + " + i2] = x + i2;");
        W.line("    }");
      }
    }
    W.line("  }");
    break;
  }

  case SiteKind::ChildrenNest: {
    // Serial-ish spine across j; the heavy inner loops are DOALL. The
    // outer still clears the SP threshold, but the children's combined
    // gain beats it — the case where greedy planning picks the wrong
    // region (§5.1, ft/lu).
    Record(true, Site.ManualOuter);
    W.line("  for (int j = 1; j < " + N + "; j = j + 1) {");
    W.line("    " + Aux + "[j] = " + Aux + "[j - 1] / 3 + j + t;");
    for (unsigned Inner = 0; Inner < Site.InnerCount; ++Inner) {
      Record(false, Site.ManualInner);
      W.line("    for (int i2 = 0; i2 < " + IN + "; i2 = i2 + 1) {");
      W.line("      int i = i2;");
      W.line("      int x = " + Array + "[j * " + IN + " + i2] + " + Aux +
             "[j] + " + formatString("%u", Inner) + ";");
      emitStages(W, Site.Work, "      ");
      W.line("      " + Array + "[j * " + IN + " + i2] = x + i2;");
      W.line("    }");
    }
    W.line("  }");
    break;
  }
  }
}

} // namespace

GeneratedBenchmark kremlin::generateBenchmark(const BenchmarkSpec &Spec) {
  GeneratedBenchmark Out;
  Out.Name = Spec.Name;
  CodeWriter W;

  W.line("// Synthetic benchmark '" + Spec.Name +
         "' generated by the Kremlin reproduction suite.");
  // Cross-kernel/cross-step chain cell: kernels pass results through it,
  // so time steps (and kernels within a step) genuinely serialize — as in
  // the real NPB codes, where kernels pipeline through shared arrays. Its
  // update form is deliberately not a breakable reduction.
  W.line("int zsync[4];");

  // Globals: one (or two) arrays per site.
  for (size_t S = 0; S < Spec.Sites.size(); ++S) {
    const SiteSpec &Site = Spec.Sites[S];
    uint64_t Words = Site.Iters;
    if (Site.Kind == SiteKind::CoarseNest ||
        Site.Kind == SiteKind::ChildrenNest) {
      Words = static_cast<uint64_t>(Site.Iters) * Site.InnerIters;
      W.line(formatString("int h%zu[%u];", S, Site.Iters));
    }
    W.line(formatString("int g%zu[%llu];", S,
                        static_cast<unsigned long long>(Words)));
  }

  // Kernels.
  unsigned PerKernel = std::max(1u, Spec.SitesPerKernel);
  unsigned NumKernels =
      (static_cast<unsigned>(Spec.Sites.size()) + PerKernel - 1) /
      PerKernel;
  for (unsigned K = 0; K < NumKernels; ++K) {
    W.line("");
    W.line(formatString("void k%u(int t) {", K));
    // The kernel's inputs depend on the chain cell...
    W.line("  t = t + zsync[0] % 2;");
    unsigned First = K * PerKernel;
    for (unsigned S = First;
         S < std::min<size_t>((K + 1) * PerKernel, Spec.Sites.size()); ++S)
      emitSite(W, Spec.Sites[S], S, formatString("g%u", S),
               formatString("h%u", S), Out.Loops);
    // ...and the step's results feed the chain cell — emitted only in the
    // last kernel so kernels stay mutually parallel within a step (as
    // independent phases are) while consecutive steps serialize. The cell
    // read must be one the chosen site writes LATE (its final iteration's
    // element, or a reduction's post-loop store), so the chain passes
    // through the site's full execution; the div-form self-update is not a
    // breakable reduction pattern.
    if (K + 1 == NumKernels) {
      unsigned Chosen = First;
      for (unsigned S = First;
           S < std::min<size_t>((K + 1) * PerKernel, Spec.Sites.size());
           ++S)
        if (Spec.Sites[S].Kind != SiteKind::ColdDoall) {
          Chosen = S;
          break;
        }
      const SiteSpec &CS = Spec.Sites[Chosen];
      uint64_t LateIdx;
      switch (CS.Kind) {
      case SiteKind::ReductionHeavy:
      case SiteKind::ReductionLight:
        LateIdx = 0; // Post-loop store of the sum.
        break;
      case SiteKind::CoarseNest:
      case SiteKind::ChildrenNest:
        LateIdx = static_cast<uint64_t>(CS.Iters) * CS.InnerIters - 1;
        break;
      default:
        LateIdx = CS.Iters - 1;
        break;
      }
      W.line(formatString("  zsync[0] = g%u[%llu] %% 5 + "
                          "zsync[0] / (zsync[0] %% 3 + 2);",
                          Chosen, static_cast<unsigned long long>(LateIdx)));
    }
    W.line("}");
  }

  // main: serial time-step loop (each site reads what it wrote last step).
  W.line("");
  W.line("int main() {");
  W.line(formatString("  for (int t = 0; t < %u; t = t + 1) {",
                      Spec.Timesteps));
  for (unsigned K = 0; K < NumKernels; ++K)
    W.line(formatString("    k%u(t);", K));
  W.line("  }");
  W.line("  return 0;");
  W.line("}");

  Out.Source = W.take();
  return Out;
}

std::vector<RegionId>
kremlin::loopRegionsAtLines(const Module &M,
                            const std::vector<unsigned> &Lines) {
  std::vector<RegionId> Regions;
  for (unsigned Line : Lines) {
    for (const StaticRegion &R : M.Regions) {
      if (R.Kind == RegionKind::Loop && R.StartLine == Line) {
        Regions.push_back(R.Id);
        break;
      }
    }
  }
  return Regions;
}
