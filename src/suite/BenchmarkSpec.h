//===- suite/BenchmarkSpec.h - Synthetic workload specs ----------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Specification DSL for the synthetic benchmark suite that stands in for
/// NPB 2.3 and the C programs of SPEC OMP2001 (see DESIGN.md's
/// substitution table). A benchmark is a list of *sites*; each site is a
/// loop pattern with a known parallelism character, and carries flags
/// saying whether the third-party MANUAL parallelization covered it.
/// Site kinds:
///
///  - HotDoall        hot, fully parallel loop (typically in both plans);
///  - SmallDoall      modest parallel loop below Kremlin's ideal-speedup
///                    threshold but kept by MANUAL (the negligible-benefit
///                    regions right of Figure 7's dotted line);
///  - ColdDoall       parallel init loop executed once (low coverage);
///  - Doacross        partial cross-iteration overlap (DOACROSS);
///  - SerialChain     genuinely serial loop (SP ~ 1);
///  - ReductionHeavy  reduction loop with ample work (the ep case);
///  - ReductionLight  reduction loop too small to amortize OpenMP reduction
///                    overhead (the art/ammp case);
///  - CoarseNest      parallel outer loop whose MANUAL version parallelized
///                    only the inner loops — the coarse-vs-fine shape that
///                    makes Kremlin beat MANUAL on sp and is;
///  - ChildrenNest    DOACROSS outer enclosing DOALL children whose summed
///                    gain beats the parent — the ft/lu case where greedy
///                    planning fails and the DP matters.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUITE_BENCHMARKSPEC_H
#define KREMLIN_SUITE_BENCHMARKSPEC_H

#include <string>
#include <vector>

namespace kremlin {

enum class SiteKind : unsigned char {
  HotDoall,
  SmallDoall,
  ColdDoall,
  Doacross,
  SerialChain,
  /// Serial across iterations but with wide straight-line ILP inside each
  /// iteration: classic CPA (total-parallelism) reports it as parallel,
  /// self-parallelism correctly reports ~1 — the §6.2 false-positive class.
  IlpSerial,
  ReductionHeavy,
  ReductionLight,
  CoarseNest,
  ChildrenNest
};

const char *siteKindName(SiteKind Kind);

/// One loop site.
struct SiteSpec {
  SiteKind Kind = SiteKind::HotDoall;
  /// Iterations of the (outer) loop.
  unsigned Iters = 256;
  /// Body work knob: number of arithmetic stages per iteration.
  unsigned Work = 8;
  /// CoarseNest/ChildrenNest: number of inner loops.
  unsigned InnerCount = 2;
  /// CoarseNest/ChildrenNest: inner loop iterations.
  unsigned InnerIters = 64;
  /// MANUAL parallelized the outer loop of this site.
  bool ManualOuter = false;
  /// MANUAL parallelized the inner loops of this site.
  bool ManualInner = false;
  /// CoarseNest: the inner loops carry a cross-iteration chain (DOACROSS,
  /// SP ~ (3*Work+8)/4) — the fine-grained choice is SP-limited while the
  /// coarse outer loop is fully parallel (the sp/is coarse-vs-fine story).
  bool InnerDoacross = false;
};

/// A whole synthetic benchmark.
struct BenchmarkSpec {
  std::string Name;
  /// Outer time-step iterations (serial across steps by construction).
  unsigned Timesteps = 4;
  /// Sites per generated kernel function.
  unsigned SitesPerKernel = 4;
  std::vector<SiteSpec> Sites;

  /// Appends \p Count copies of \p Site.
  void add(const SiteSpec &Site, unsigned Count = 1) {
    for (unsigned I = 0; I < Count; ++I)
      Sites.push_back(Site);
  }
};

} // namespace kremlin

#endif // KREMLIN_SUITE_BENCHMARKSPEC_H
