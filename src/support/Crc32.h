//===- support/Crc32.h - CRC-32 checksums -----------------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// CRC-32 (IEEE 802.3: reflected polynomial 0xEDB88320, init/xorout
/// 0xFFFFFFFF), bit-compatible with zlib's crc32(). Used to checksum
/// profile-store blobs so a torn or bit-rotted file is detected at store
/// open instead of surfacing later as a trace-decode error (or, worse,
/// silently wrong merged numbers).
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_CRC32_H
#define KREMLIN_SUPPORT_CRC32_H

#include <array>
#include <cstdint>
#include <string_view>

namespace kremlin {

/// CRC-32 of \p Data; pass a previous result as \p Seed to checksum in
/// chunks (crc32(b, crc32(a)) == crc32(a+b)).
inline uint32_t crc32(std::string_view Data, uint32_t Seed = 0) {
  static const std::array<uint32_t, 256> Table = [] {
    std::array<uint32_t, 256> T{};
    for (uint32_t I = 0; I < 256; ++I) {
      uint32_t C = I;
      for (int K = 0; K < 8; ++K)
        C = (C & 1) ? 0xEDB88320u ^ (C >> 1) : C >> 1;
      T[I] = C;
    }
    return T;
  }();
  uint32_t Crc = ~Seed;
  for (char Ch : Data)
    Crc = Table[(Crc ^ static_cast<unsigned char>(Ch)) & 0xFFu] ^ (Crc >> 8);
  return ~Crc;
}

} // namespace kremlin

#endif // KREMLIN_SUPPORT_CRC32_H
