//===- support/StringUtils.h - Small string helpers -------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting and manipulation helpers used across the project:
/// printf-style formatting into std::string, numeric formatting matching the
/// paper's tables (fixed decimals, percentages, human-readable byte sizes),
/// and splitting/trimming.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_STRINGUTILS_H
#define KREMLIN_SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace kremlin {

/// printf-style formatting that returns a std::string.
std::string formatString(const char *Fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats \p Value with \p Decimals fractional digits ("145.3").
std::string formatFixed(double Value, unsigned Decimals);

/// Formats \p Value as a percentage with \p Decimals digits ("9.7%").
std::string formatPercent(double Value, unsigned Decimals);

/// Formats a byte count with a binary-unit suffix ("17.9 GB", "150 KB").
std::string formatBytes(uint64_t Bytes);

/// Formats a ratio as a speedup/size factor ("1.57x", "119000x").
std::string formatFactor(double Ratio, unsigned Decimals = 2);

/// Splits \p Text on \p Sep, keeping empty fields.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trimString(std::string_view Text);

} // namespace kremlin

#endif // KREMLIN_SUPPORT_STRINGUTILS_H
