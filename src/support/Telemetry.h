//===- support/Telemetry.h - Self-telemetry for the pipeline ----*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Process-wide self-telemetry ("profile the profiler"): a thread-safe
/// metrics registry (counters, gauges, log2-bucket histograms), RAII Span
/// scopes recording into a bounded, lock-sharded trace ring that streams
/// completed chunks through a pluggable TraceSink (in-memory for tests,
/// buffered incremental Chrome trace_event JSON for files), and a small
/// leveled structured logger (level via the KREMLIN_LOG env var).
///
/// Cost model: spans and instant events stay compiled-in everywhere
/// because the disabled path — tracing off — is one relaxed atomic
/// increment per event (the event counter) with no clock read and no
/// allocation. The enabled path is one shard-mutex push into a fixed-size
/// ring; when a shard fills, the whole chunk is handed to the installed
/// sink, so sink cost (serialization, file writes) is amortized over the
/// chunk. With no sink installed the ring is a bounded window: the oldest
/// event is overwritten and telemetry.trace.dropped counts the loss —
/// telemetry memory stays constant no matter how long the run. Counters
/// and gauges are always live; they are single relaxed atomic operations.
/// Histograms add a few relaxed increments. bench_micro_telemetry
/// measures all of these paths.
///
/// Hot-path idiom: resolve the metric once, then update through the
/// reference (registration takes a mutex, updates never do):
///
///   static telemetry::Counter &Reads =
///       telemetry::Registry::global().counter("shadow.reads");
///   Reads.add(N);
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_TELEMETRY_H
#define KREMLIN_SUPPORT_TELEMETRY_H

#include "support/Json.h"
#include "support/Status.h"

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kremlin::telemetry {

// --- Metrics ----------------------------------------------------------------

/// Monotonic counter. All operations are relaxed atomics.
class Counter {
public:
  void add(uint64_t Delta = 1) {
    V.fetch_add(Delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> V{0};
};

/// Last-write-wins double value (stored as its bit pattern).
class Gauge {
public:
  void set(double Value) {
    Bits.store(std::bit_cast<uint64_t>(Value), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(Bits.load(std::memory_order_relaxed));
  }
  void reset() { Bits.store(0, std::memory_order_relaxed); }

private:
  std::atomic<uint64_t> Bits{0}; // 0 is the bit pattern of 0.0.
};

/// Histogram over uint64 samples with fixed log2-scale buckets: bucket i
/// counts samples whose bit width is i, i.e. bucket 0 holds the value 0
/// and bucket i >= 1 holds [2^(i-1), 2^i). Concurrent record() calls are
/// lossless (every update is a relaxed atomic RMW).
class Histogram {
public:
  static constexpr unsigned NumBuckets = 65;

  void record(uint64_t Value) {
    Buckets[bucketFor(Value)].fetch_add(1, std::memory_order_relaxed);
    Count.fetch_add(1, std::memory_order_relaxed);
    Sum.fetch_add(Value, std::memory_order_relaxed);
    atomicMin(Min, Value);
    atomicMax(Max, Value);
  }

  static unsigned bucketFor(uint64_t Value) {
    return static_cast<unsigned>(std::bit_width(Value));
  }
  /// Inclusive upper bound of \p Bucket (its largest representable value).
  static uint64_t bucketUpperBound(unsigned Bucket) {
    return Bucket == 0 ? 0 : (Bucket >= 64 ? UINT64_MAX : (1ull << Bucket) - 1);
  }

  uint64_t count() const { return Count.load(std::memory_order_relaxed); }
  uint64_t sum() const { return Sum.load(std::memory_order_relaxed); }
  /// Smallest recorded sample; 0 when empty.
  uint64_t min() const {
    uint64_t V = Min.load(std::memory_order_relaxed);
    return V == UINT64_MAX ? 0 : V;
  }
  uint64_t max() const { return Max.load(std::memory_order_relaxed); }
  uint64_t bucket(unsigned I) const {
    return Buckets[I].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket containing the \p P-quantile (P in [0,1]).
  /// A bucket-resolution estimate: exact within a factor of 2.
  uint64_t quantile(double P) const;

  void reset();

private:
  static void atomicMin(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V < Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }
  static void atomicMax(std::atomic<uint64_t> &A, uint64_t V) {
    uint64_t Cur = A.load(std::memory_order_relaxed);
    while (V > Cur &&
           !A.compare_exchange_weak(Cur, V, std::memory_order_relaxed)) {
    }
  }

  std::atomic<uint64_t> Count{0};
  std::atomic<uint64_t> Sum{0};
  std::atomic<uint64_t> Min{UINT64_MAX};
  std::atomic<uint64_t> Max{0};
  std::atomic<uint64_t> Buckets[NumBuckets]{};
};

/// The process-wide metric registry. Metrics are created on first use and
/// never deleted, so references stay valid for the process lifetime;
/// creation takes a mutex, updates are lock-free through the returned
/// reference. resetValues() zeroes everything in place (tests, and the
/// CLI between replans) without invalidating references.
class Registry {
public:
  static Registry &global();

  Counter &counter(std::string_view Name);
  Gauge &gauge(std::string_view Name);
  Histogram &histogram(std::string_view Name);

  /// Flat snapshot: every metric as (name, value) in name order.
  /// Histograms expand to <name>.count/.sum/.min/.max/.p50/.p99; an empty
  /// histogram's min/max/p50/p99 are NaN (there is no sample to report),
  /// which serializes as JSON null and renders as "n/a" — never a
  /// sentinel value masquerading as data.
  std::vector<std::pair<std::string, double>> snapshot() const;

  /// Serializes the snapshot as the same {"metrics": {...}} document shape
  /// kremlin-bench emits, so parseMetricsJson reads it back.
  JsonValue toJson() const;

  /// Renders the snapshot as an aligned two-column table. NaN values
  /// (empty-histogram quantiles) render as "n/a".
  std::string renderTable() const;

  /// Renders every metric in the Prometheus text exposition format:
  /// names are prefixed `kremlin_` with non-alphanumerics mapped to '_',
  /// each sample family is preceded by `# HELP`/`# TYPE` lines, and
  /// histograms emit their log2 buckets as cumulative `_bucket{le="..."}`
  /// series (inclusive upper bounds) closed by `le="+Inf"`, plus `_sum`
  /// and `_count`.
  std::string renderPrometheus() const;

  /// Zeroes every registered metric; references remain valid.
  void resetValues();

private:
  mutable std::mutex Mutex;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> Counters;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> Histograms;
};

// --- Trace ring, sinks, and spans -------------------------------------------

/// One recorded trace event (Chrome trace_event phases X / i / C).
struct TraceEvent {
  enum class Kind : unsigned char { Span, Instant, CounterSample };
  Kind K = Kind::Span;
  std::string Name;
  std::string Category;
  uint64_t TimeUs = 0; ///< Microseconds since process start.
  uint64_t DurUs = 0;  ///< Span only.
  uint32_t Tid = 0;    ///< Compacted thread id (first-seen order).
  double Value = 0.0;  ///< CounterSample only.
  std::vector<std::pair<std::string, std::string>> Args;
};

/// Geometry of the trace ring and the file sink's write buffer.
struct TraceSinkConfig {
  /// Total ring capacity in events across all shards (--trace-ring-events=).
  /// 0 restores the default. Per-shard capacity is Total / NumTraceShards,
  /// floored at 4.
  size_t RingEvents = 65536;
  /// File-sink buffer size in KiB (--trace-flush-kb=): serialized JSON
  /// accumulates until this many KiB, then one fwrite+fflush runs.
  size_t FlushKb = 64;
};

/// Number of mutex-sharded ring segments (threads hash onto shards).
inline constexpr unsigned NumTraceShards = 16;

/// Receives completed event chunks from the trace ring. writeBatch() is
/// always called under the process-wide sink lock, so implementations need
/// no synchronization of their own. close() finalizes the output (called
/// once by closeTraceSink() or the destructor).
class TraceSink {
public:
  virtual ~TraceSink() = default;

  /// Consumes one flushed ring chunk (events in ring order, one shard).
  virtual void writeBatch(std::vector<TraceEvent> Batch) = 0;

  /// Finalizes the sink's output; ok unless output could not be completed.
  virtual Status close() { return Status(); }
};

/// Accumulates every batch in memory — the test sink, and the model for
/// the pre-streaming whole-run buffer.
class InMemoryTraceSink : public TraceSink {
public:
  void writeBatch(std::vector<TraceEvent> Batch) override;

  /// Takes the accumulated events (thread-safe; clears the store).
  std::vector<TraceEvent> take();

private:
  std::mutex Mutex;
  std::vector<TraceEvent> Events;
};

/// Streams valid Chrome trace_event JSON to a file incrementally: the
/// document header is written on open, each batch appends serialized
/// events to an in-memory buffer that flushes to disk every FlushKb KiB,
/// and close() (or destruction) writes the array/object tail — so the file
/// parses as {"displayTimeUnit": "ms", "traceEvents": [...]} even for
/// runs long past what an in-memory buffer could hold. Counters:
/// telemetry.trace.file_flushes / telemetry.trace.file_bytes.
class FileTraceSink : public TraceSink {
public:
  /// Opens \p Path for writing and emits the document header. IoError when
  /// the file cannot be created.
  static Expected<std::unique_ptr<FileTraceSink>>
  open(std::string Path, const TraceSinkConfig &Cfg = TraceSinkConfig());

  ~FileTraceSink() override;
  void writeBatch(std::vector<TraceEvent> Batch) override;
  Status close() override;

  const std::string &path() const { return Path; }

private:
  FileTraceSink() = default;

  void flushBuffer(bool Force);

  std::string Path;
  void *File = nullptr; ///< std::FILE*, kept opaque to spare the include.
  std::string Buf;
  size_t FlushBytes = 64 * 1024;
  bool WroteEvent = false;
  bool Closed = false;
  Status CloseStatus;
};

/// Whether span/instant/counter-sample calls record. When false they
/// degrade to one relaxed counter increment.
bool traceEnabled();

/// Legacy/test switch: enables recording into the bounded ring without a
/// sink (takeTrace() reads the window back). Turning tracing off does not
/// touch an installed sink.
void setTraceEnabled(bool Enabled);

/// Installs \p Sink and enables tracing; the ring geometry switches to
/// \p Cfg. An already-installed sink is flushed and closed first (its
/// close status is returned — the new sink is installed regardless).
/// Passing nullptr closes the current sink and disables tracing.
Status setTraceSink(std::unique_ptr<TraceSink> Sink,
                    TraceSinkConfig Cfg = TraceSinkConfig());

/// The installed sink (nullptr when none). Only for tests/inspection;
/// unsynchronized use while tracing is racy by nature.
TraceSink *traceSink();

/// Drains the shard rings into the installed sink without closing it.
/// No-op when no sink is installed.
void flushTraceRings();

/// flushTraceRings() + sink close + uninstall. Tracing is left disabled.
/// Returns the sink's close status (ok when no sink was installed).
Status closeTraceSink();

/// Resizes the ring (0 = default). Events already buffered are preserved
/// up to the new capacity; oldest are dropped first.
void setTraceRingEvents(size_t TotalEvents);

/// Microseconds since process start (monotonic).
uint64_t nowUs();

/// Records an instant event (Chrome phase "i") when tracing is enabled.
void instantEvent(std::string Name, std::string Category,
                  std::vector<std::pair<std::string, std::string>> Args = {});

/// Records a complete span (Chrome phase "X") with explicit timestamps —
/// for durations measured before the event is emitted (e.g. the queue
/// wait a request accrued before its handler started). Picks up the
/// current trace context like Span does.
void recordSpanAt(std::string Name, std::string Category, uint64_t StartUs,
                  uint64_t DurUs,
                  std::vector<std::pair<std::string, std::string>> Args = {});

/// Records a counter sample (Chrome phase "C") when tracing is enabled.
void counterSample(std::string Name, double Value);

/// Drains every shard of the trace ring, sorted by timestamp. Does not
/// touch an installed sink's already-flushed batches; with no sink this
/// returns the bounded window of most-recent events.
std::vector<TraceEvent> takeTrace();

/// One event as a Chrome trace_event object (shared by the whole-document
/// serializer and the streaming file sink).
JsonValue traceEventToJson(const TraceEvent &E);

/// Serializes events as a Chrome trace_event document:
///   {"traceEvents": [...], "displayTimeUnit": "ms"}
std::string traceToChromeJson(const std::vector<TraceEvent> &Events);

/// takeTrace() + traceToChromeJson().
std::string takeTraceAsChromeJson();

/// RAII scope recording one complete event (Chrome phase "X") into the
/// trace buffer. When tracing is disabled the constructor is a single
/// relaxed atomic increment and the destructor a branch.
class Span {
public:
  explicit Span(std::string_view Name, std::string_view Category = "pipeline");
  ~Span() { end(); }

  Span(const Span &) = delete;
  Span &operator=(const Span &) = delete;

  /// Attaches a key/value argument (dropped when not recording).
  void arg(std::string_view Key, std::string Value);

  /// Ends the span early (idempotent; the destructor is then a no-op).
  void end();

private:
  std::string Name;
  std::string Category;
  std::vector<std::pair<std::string, std::string>> Args;
  uint64_t StartUs = 0;
  bool Recording = false;
};

// --- Trace-context propagation ----------------------------------------------
//
// One request's story spans processes: `kremlin push` mints a 16-byte
// trace id, stamps each attempt with a fresh 8-byte span id, and sends
// both as a W3C-traceparent-style header; the serve side adopts the id
// into its request span. Every span recorded while a ScopedTraceContext
// is active carries a `trace_id` arg, so one grep over the exported
// Chrome trace stitches client retries and server handling together.

/// A propagated trace identity. Ids are lowercase hex: 32 chars (16
/// bytes) for the trace, 16 chars (8 bytes) for the span.
struct TraceContext {
  std::string TraceId;
  std::string SpanId;

  bool valid() const { return !TraceId.empty(); }
};

/// Mints a fresh context (new trace id + span id). Ids are unique per
/// process and seeded from the clock — collision-resistant correlation
/// ids, not security tokens.
TraceContext mintTraceContext();

/// Mints a fresh 16-hex-char span id (one per push attempt).
std::string mintSpanId();

/// The wire format: `00-<trace-id>-<span-id>-01` (W3C traceparent,
/// version 00, sampled flag).
std::string formatTraceparent(const TraceContext &Ctx);

/// Parses a traceparent header. Strict: exactly version "00", lowercase
/// hex, correct lengths, non-zero ids — anything else (malformed,
/// oversized, truncated) returns false and the caller mints a fresh
/// context instead, so a garbage header can never poison the trace.
bool parseTraceparent(std::string_view Header, TraceContext &Out);

/// Installs \p Ctx as the calling thread's current trace context for the
/// scope's lifetime (nesting restores the previous one). Spans recorded
/// inside the scope automatically carry a `trace_id` arg.
class ScopedTraceContext {
public:
  explicit ScopedTraceContext(TraceContext Ctx);
  ~ScopedTraceContext();

  ScopedTraceContext(const ScopedTraceContext &) = delete;
  ScopedTraceContext &operator=(const ScopedTraceContext &) = delete;

private:
  TraceContext Ctx;
  const TraceContext *Prev;
};

/// The calling thread's current context (nullptr outside any scope).
const TraceContext *currentTraceContext();

// --- Structured leveled logger ----------------------------------------------

enum class LogLevel : unsigned char { Error = 0, Warn = 1, Info = 2, Debug = 3 };

const char *logLevelName(LogLevel L);

/// Current threshold. First use reads KREMLIN_LOG (error|warn|info|debug,
/// or a digit 0-3); the default is warn.
LogLevel logLevel();
/// Programmatic override (tests, tools).
void setLogLevel(LogLevel L);

inline bool logEnabled(LogLevel L) { return L <= logLevel(); }

/// Emits one structured line to stderr when \p L passes the threshold:
///   kremlin[<level>] <component>: <message>
/// Suppressed messages cost a level check plus one relaxed increment of
/// the log.suppressed counter.
void logMessage(LogLevel L, const char *Component, std::string_view Msg);

/// printf-style logMessage; formats only when the level is enabled.
void logf(LogLevel L, const char *Component, const char *Fmt, ...)
    __attribute__((format(printf, 3, 4)));

inline void logError(const char *Component, std::string_view Msg) {
  logMessage(LogLevel::Error, Component, Msg);
}
inline void logWarn(const char *Component, std::string_view Msg) {
  logMessage(LogLevel::Warn, Component, Msg);
}
inline void logInfo(const char *Component, std::string_view Msg) {
  logMessage(LogLevel::Info, Component, Msg);
}
inline void logDebug(const char *Component, std::string_view Msg) {
  logMessage(LogLevel::Debug, Component, Msg);
}

} // namespace kremlin::telemetry

#endif // KREMLIN_SUPPORT_TELEMETRY_H
