//===- support/Json.h - Minimal JSON value, parser, writer ------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free JSON library for the bench/regression tooling:
/// an insertion-ordered value type, a strict recursive-descent parser, and
/// a pretty-printing serializer whose number formatting round-trips
/// doubles. Objects preserve insertion order so emitted reports stay in
/// suite order and diffs against checked-in baselines are stable.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_JSON_H
#define KREMLIN_SUPPORT_JSON_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace kremlin {

/// One JSON value (null, bool, number, string, array, or object).
class JsonValue {
public:
  enum class Kind : unsigned char { Null, Bool, Number, String, Array, Object };

  JsonValue() : K(Kind::Null) {}
  JsonValue(bool V) : K(Kind::Bool), Boolean(V) {}
  JsonValue(double V) : K(Kind::Number), Number(V) {}
  JsonValue(int V) : K(Kind::Number), Number(V) {}
  JsonValue(unsigned V) : K(Kind::Number), Number(V) {}
  JsonValue(uint64_t V) : K(Kind::Number), Number(static_cast<double>(V)) {}
  JsonValue(const char *V) : K(Kind::String), Str(V) {}
  JsonValue(std::string V) : K(Kind::String), Str(std::move(V)) {}

  static JsonValue makeArray() {
    JsonValue V;
    V.K = Kind::Array;
    return V;
  }
  static JsonValue makeObject() {
    JsonValue V;
    V.K = Kind::Object;
    return V;
  }

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool(bool Default = false) const {
    return isBool() ? Boolean : Default;
  }
  double asNumber(double Default = 0.0) const {
    return isNumber() ? Number : Default;
  }
  const std::string &asString() const { return Str; }

  /// Array access.
  size_t size() const {
    return isArray() ? Arr.size() : (isObject() ? Members.size() : 0);
  }
  const JsonValue &at(size_t I) const { return Arr[I]; }
  void push(JsonValue V) { Arr.push_back(std::move(V)); }

  /// Object access: members in insertion order.
  const std::vector<std::pair<std::string, JsonValue>> &members() const {
    return Members;
  }
  /// Sets \p Key (replacing an existing member of the same name).
  void set(std::string_view Key, JsonValue V);
  /// Member lookup; nullptr when absent or not an object.
  const JsonValue *get(std::string_view Key) const;
  /// Numeric member shorthand with default.
  double getNumber(std::string_view Key, double Default = 0.0) const {
    const JsonValue *V = get(Key);
    return V && V->isNumber() ? V->Number : Default;
  }

  /// Serializes with two-space indentation (\p Indent is the starting
  /// depth). Number formatting picks the shortest representation that
  /// round-trips the double.
  std::string serialize(unsigned Indent = 0) const;

  /// Strict parse of a complete JSON document (trailing garbage is an
  /// error). Returns false and fills \p Error with a position-annotated
  /// message on malformed input.
  static bool parse(std::string_view Text, JsonValue &Out,
                    std::string *Error = nullptr);

private:
  Kind K;
  bool Boolean = false;
  double Number = 0.0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Members;
};

/// Formats \p V the way the serializer does (shortest round-trip form).
std::string formatJsonNumber(double V);

/// Reads an entire file into \p Out; false on I/O failure.
bool readFileToString(const std::string &Path, std::string &Out);

/// Writes \p Text to \p Path atomically enough for our purposes (truncate
/// + write); false on I/O failure.
bool writeStringToFile(const std::string &Path, std::string_view Text);

} // namespace kremlin

#endif // KREMLIN_SUPPORT_JSON_H
