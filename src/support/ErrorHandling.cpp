//===- support/ErrorHandling.cpp ------------------------------------------===//

#include "support/ErrorHandling.h"

#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cstdlib>

void kremlin::reportFatalError(std::string_view Msg, const char *File,
                               unsigned Line) {
  telemetry::logError(
      "fatal", formatString("%.*s (at %s:%u)", static_cast<int>(Msg.size()),
                            Msg.data(), File, Line));
  std::abort();
}
