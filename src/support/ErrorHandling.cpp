//===- support/ErrorHandling.cpp ------------------------------------------===//

#include "support/ErrorHandling.h"

#include <cstdio>
#include <cstdlib>

void kremlin::reportFatalError(std::string_view Msg, const char *File,
                               unsigned Line) {
  std::fprintf(stderr, "kremlin fatal error: %.*s (at %s:%u)\n",
               static_cast<int>(Msg.size()), Msg.data(), File, Line);
  std::abort();
}
