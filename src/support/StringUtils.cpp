//===- support/StringUtils.cpp --------------------------------------------===//

#include "support/StringUtils.h"

#include <cstdarg>
#include <cstdio>

using namespace kremlin;

std::string kremlin::formatString(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  va_list ArgsCopy;
  va_copy(ArgsCopy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Args);
  va_end(Args);
  if (Needed < 0) {
    va_end(ArgsCopy);
    return std::string();
  }
  std::string Result(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Result.data(), Result.size() + 1, Fmt, ArgsCopy);
  va_end(ArgsCopy);
  return Result;
}

std::string kremlin::formatFixed(double Value, unsigned Decimals) {
  return formatString("%.*f", static_cast<int>(Decimals), Value);
}

std::string kremlin::formatPercent(double Value, unsigned Decimals) {
  return formatString("%.*f%%", static_cast<int>(Decimals), Value);
}

std::string kremlin::formatBytes(uint64_t Bytes) {
  static const char *Units[] = {"B", "KB", "MB", "GB", "TB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1024.0 && Unit + 1 < sizeof(Units) / sizeof(Units[0])) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return formatString("%llu B", static_cast<unsigned long long>(Bytes));
  return formatString("%.1f %s", Value, Units[Unit]);
}

std::string kremlin::formatFactor(double Ratio, unsigned Decimals) {
  return formatString("%.*fx", static_cast<int>(Decimals), Ratio);
}

std::vector<std::string> kremlin::splitString(std::string_view Text,
                                              char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(Text.substr(Start));
      return Parts;
    }
    Parts.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view kremlin::trimString(std::string_view Text) {
  while (!Text.empty() && (Text.front() == ' ' || Text.front() == '\t' ||
                           Text.front() == '\n' || Text.front() == '\r'))
    Text.remove_prefix(1);
  while (!Text.empty() && (Text.back() == ' ' || Text.back() == '\t' ||
                           Text.back() == '\n' || Text.back() == '\r'))
    Text.remove_suffix(1);
  return Text;
}
