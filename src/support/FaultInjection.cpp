//===- support/FaultInjection.cpp -----------------------------------------===//

#include "support/FaultInjection.h"

#include "support/Prng.h"
#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <cstdlib>
#include <mutex>
#include <vector>

using namespace kremlin;

std::atomic<bool> fault::detail::Active{false};

namespace {

struct FaultConfig {
  /// Per-site failure probability; < 0 means the site is inactive.
  double SiteP[6] = {-1.0, -1.0, -1.0, -1.0, -1.0, -1.0};
  std::vector<std::string> FailStages;
  uint64_t Seed = 0;
  std::string Spec;
};

std::mutex ConfigMutex;
FaultConfig Config; // Guarded by ConfigMutex.
/// Global draw index: probabilistic sites consume one slot each, giving a
/// seed-determined fire/no-fire sequence.
std::atomic<uint64_t> Draws{0};

/// Parses one `site[:prob]` token into \p Out. Returns false on nonsense.
bool parseToken(std::string_view Tok, FaultConfig &Out) {
  auto ParseProb = [](std::string_view Text, double &P) {
    if (Text.empty())
      return false;
    char *End = nullptr;
    std::string Buf(Text);
    P = std::strtod(Buf.c_str(), &End);
    return End && *End == '\0' && P >= 0.0 && P <= 1.0;
  };

  size_t Colon = Tok.find(':');
  std::string_view Name = Tok.substr(0, Colon);
  std::string_view Rest =
      Colon == std::string_view::npos ? std::string_view() : Tok.substr(Colon + 1);

  if (Name == "stage") {
    if (Rest.empty())
      return false;
    Out.FailStages.emplace_back(Rest);
    return true;
  }

  fault::Site S;
  if (Name == "alloc")
    S = fault::Site::Alloc;
  else if (Name == "trace_corrupt")
    S = fault::Site::TraceCorrupt;
  else if (Name == "bench_throw")
    S = fault::Site::BenchThrow;
  else if (Name == "ingest")
    S = fault::Site::Ingest;
  else if (Name == "store_write")
    S = fault::Site::StoreWrite;
  else if (Name == "shed")
    S = fault::Site::Shed;
  else
    return false;

  double P = 1.0; // A bare site name means "always fire".
  if (Colon != std::string_view::npos && !ParseProb(Rest, P))
    return false;
  Out.SiteP[static_cast<unsigned>(S)] = P;
  return true;
}

bool applySpec(std::string_view Spec, uint64_t Seed) {
  FaultConfig New;
  New.Seed = Seed;
  New.Spec = Spec;
  bool Ok = true;
  for (const std::string &Tok : splitString(Spec, ',')) {
    std::string_view Trimmed = trimString(Tok);
    if (Trimmed.empty())
      continue;
    if (!parseToken(Trimmed, New)) {
      telemetry::logf(telemetry::LogLevel::Warn, "fault",
                      "ignoring malformed KREMLIN_FAULT token '%.*s'",
                      static_cast<int>(Trimmed.size()), Trimmed.data());
      Ok = false;
    }
  }
  bool AnyActive = !New.FailStages.empty();
  for (double P : New.SiteP)
    AnyActive |= P >= 0.0;

  std::lock_guard<std::mutex> Lock(ConfigMutex);
  Config = Ok && AnyActive ? std::move(New) : FaultConfig();
  Draws.store(0, std::memory_order_relaxed);
  fault::detail::Active.store(Ok && AnyActive, std::memory_order_relaxed);
  return Ok;
}

} // namespace

void fault::detail::initFromEnvOnce() {
  static std::once_flag Once;
  std::call_once(Once, [] {
    const char *Spec = std::getenv("KREMLIN_FAULT");
    if (!Spec || !*Spec)
      return;
    const char *SeedStr = std::getenv("KREMLIN_FAULT_SEED");
    uint64_t Seed = SeedStr ? std::strtoull(SeedStr, nullptr, 10) : 0;
    applySpec(Spec, Seed);
    telemetry::logf(telemetry::LogLevel::Warn, "fault",
                    "fault injection active: KREMLIN_FAULT=%s (seed %llu)",
                    Spec, static_cast<unsigned long long>(Seed));
  });
}

bool fault::shouldFail(Site S) {
  if (!enabled())
    return false;
  double P;
  uint64_t Seed;
  {
    std::lock_guard<std::mutex> Lock(ConfigMutex);
    P = Config.SiteP[static_cast<unsigned>(S)];
    Seed = Config.Seed;
  }
  if (P < 0.0)
    return false;
  if (P >= 1.0) {
    telemetry::Registry::global().counter("fault.injected").add();
    return true;
  }
  // One PRNG per draw index keeps the sequence independent of which sites
  // interleave: draw N fires iff splitmix(seed, N) < P.
  uint64_t N = Draws.fetch_add(1, std::memory_order_relaxed);
  Prng R(Seed ^ (N * 0x9e3779b97f4a7c15ULL + 1));
  bool Fail = R.nextBool(P);
  if (Fail)
    telemetry::Registry::global().counter("fault.injected").add();
  return Fail;
}

bool fault::stageShouldFail(std::string_view Stage) {
  if (!enabled())
    return false;
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  for (const std::string &Name : Config.FailStages)
    if (Name == Stage) {
      telemetry::Registry::global().counter("fault.injected").add();
      return true;
    }
  return false;
}

bool fault::configure(std::string_view Spec, uint64_t Seed) {
  detail::initFromEnvOnce(); // Consume the env var so it can't resurrect later.
  if (trimString(Spec).empty()) {
    reset();
    return true;
  }
  return applySpec(Spec, Seed);
}

void fault::reset() {
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  Config = FaultConfig();
  detail::Active.store(false, std::memory_order_relaxed);
}

std::string fault::activeSpec() {
  if (!enabled())
    return "";
  std::lock_guard<std::mutex> Lock(ConfigMutex);
  return Config.Spec;
}
