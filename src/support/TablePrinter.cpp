//===- support/TablePrinter.cpp -------------------------------------------===//

#include "support/TablePrinter.h"

#include <algorithm>
#include <cctype>

using namespace kremlin;

/// Returns true if \p Cell looks numeric (digits, '.', '-', '%', 'x'),
/// in which case it is right-aligned like the paper's tables.
static bool looksNumeric(const std::string &Cell) {
  if (Cell.empty())
    return false;
  bool SawDigit = false;
  for (char C : Cell) {
    if (std::isdigit(static_cast<unsigned char>(C))) {
      SawDigit = true;
      continue;
    }
    if (C == '.' || C == '-' || C == '+' || C == '%' || C == 'x' || C == ',')
      continue;
    return false;
  }
  return SawDigit;
}

void TablePrinter::setHeader(std::vector<std::string> Cells) {
  Header = std::move(Cells);
}

void TablePrinter::addRow(std::vector<std::string> Cells) {
  Rows.push_back(Row{std::move(Cells), /*IsSeparator=*/false});
}

void TablePrinter::addSeparator() {
  Rows.push_back(Row{{}, /*IsSeparator=*/true});
}

size_t TablePrinter::numRows() const {
  size_t N = 0;
  for (const Row &R : Rows)
    if (!R.IsSeparator)
      ++N;
  return N;
}

std::string TablePrinter::render() const {
  size_t NumCols = Header.size();
  for (const Row &R : Rows)
    NumCols = std::max(NumCols, R.Cells.size());

  std::vector<size_t> Widths(NumCols, 0);
  for (size_t I = 0; I < Header.size(); ++I)
    Widths[I] = std::max(Widths[I], Header[I].size());
  for (const Row &R : Rows)
    for (size_t I = 0; I < R.Cells.size(); ++I)
      Widths[I] = std::max(Widths[I], R.Cells[I].size());

  auto RenderCells = [&](const std::vector<std::string> &Cells,
                         std::string &Out) {
    for (size_t I = 0; I < NumCols; ++I) {
      const std::string Cell = I < Cells.size() ? Cells[I] : std::string();
      size_t Pad = Widths[I] - Cell.size();
      if (looksNumeric(Cell)) {
        Out.append(Pad, ' ');
        Out += Cell;
      } else {
        Out += Cell;
        Out.append(Pad, ' ');
      }
      if (I + 1 < NumCols)
        Out += "  ";
    }
    // Trim trailing padding so lines end at content.
    while (!Out.empty() && Out.back() == ' ')
      Out.pop_back();
    Out += '\n';
  };

  std::string Out;
  size_t TotalWidth = 0;
  for (size_t W : Widths)
    TotalWidth += W;
  TotalWidth += NumCols > 1 ? 2 * (NumCols - 1) : 0;

  if (!Header.empty()) {
    RenderCells(Header, Out);
    Out.append(TotalWidth, '-');
    Out += '\n';
  }
  for (const Row &R : Rows) {
    if (R.IsSeparator) {
      Out.append(TotalWidth, '-');
      Out += '\n';
      continue;
    }
    RenderCells(R.Cells, Out);
  }
  return Out;
}
