//===- support/FaultInjection.h - Deterministic fault injection -*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seedable, deterministic fault-injection points so the failure paths of
/// the pipeline are *testable*: stress tests (and operators running fault
/// drills) flip faults on and assert that every layer propagates a clean
/// Status instead of crashing, leaking, or wedging the bench harness.
///
/// Activation is via the KREMLIN_FAULT environment variable (read once) or
/// programmatically via configure() in tests. The spec is a comma list:
///
///   KREMLIN_FAULT=alloc:0.01          fail ~1% of shadow-segment allocations
///   KREMLIN_FAULT=trace_corrupt       fail every compressed-trace decode
///   KREMLIN_FAULT=stage:execute       fail the named pipeline stage
///   KREMLIN_FAULT=bench_throw:0.5     throw from ~50% of bench workers
///   KREMLIN_FAULT=ingest:0.5          fail ~50% of profile ingests
///   KREMLIN_FAULT=store_write:0.5     fail ~50% of profile-store writes
///   KREMLIN_FAULT=shed:0.2            shed ~20% of serve requests (503)
///   KREMLIN_FAULT=alloc:0.05,stage:plan     specs combine
///
/// Probabilistic sites draw from a SplitMix64 stream indexed by a global
/// draw counter, seeded by KREMLIN_FAULT_SEED (default 0): single-threaded
/// runs replay exactly; multi-threaded runs fire the same *set* of draws.
///
/// Cost contract: every site first checks enabled() — one relaxed atomic
/// load — so release binaries without KREMLIN_FAULT pay one predictable
/// branch per (rare) injection point: segment allocation, trace decode,
/// stage entry. Nothing on the per-instruction hot path checks faults.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_FAULTINJECTION_H
#define KREMLIN_SUPPORT_FAULTINJECTION_H

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace kremlin::fault {

/// Probabilistic injection sites (always-on sites use stageShouldFail).
enum class Site : unsigned char {
  /// Shadow-memory segment allocation (models allocation failure / OOM).
  Alloc,
  /// Compressed-trace decode (models a corrupt/truncated trace file).
  TraceCorrupt,
  /// Bench-harness worker entry: throws instead of returning (exercises
  /// the harness exception boundary).
  BenchThrow,
  /// Profile ingest (file reads and `kremlin serve` uploads): models a
  /// failed fleet upload so the aggregation path's error plumbing is
  /// drillable (spec keyword `ingest`).
  Ingest,
  /// Profile-store durable write (blob or index): models a disk failure /
  /// crash mid-write — the temp file is left behind, the rename never
  /// happens — so store recovery is drillable (spec keyword `store_write`).
  StoreWrite,
  /// `kremlin serve` load shedding: the service sheds the request with
  /// 503 + Retry-After as if its pending-request queue were full, so the
  /// backpressure path (and clients' retry handling) is drillable without
  /// generating real overload (spec keyword `shed`).
  Shed,
};

namespace detail {
/// Fast-path flag; set by env-var initialization and configure().
extern std::atomic<bool> Active;
/// Reads KREMLIN_FAULT / KREMLIN_FAULT_SEED exactly once.
void initFromEnvOnce();
} // namespace detail

/// True when any fault spec is active. The disabled path is a relaxed
/// atomic load (after one-time env initialization).
inline bool enabled() {
  detail::initFromEnvOnce();
  return detail::Active.load(std::memory_order_relaxed);
}

/// Draws \p S's probability; always false when disabled or the site is not
/// in the active spec.
bool shouldFail(Site S);

/// True when the active spec names `stage:<Stage>`.
bool stageShouldFail(std::string_view Stage);

/// Programmatic activation (tests). Returns false and deactivates on a
/// malformed spec. An empty spec deactivates.
bool configure(std::string_view Spec, uint64_t Seed = 0);

/// Deactivates all injection (tests).
void reset();

/// The active spec string ("" when disabled), for diagnostics.
std::string activeSpec();

} // namespace kremlin::fault

#endif // KREMLIN_SUPPORT_FAULTINJECTION_H
