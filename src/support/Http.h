//===- support/Http.h - Embedded HTTP/1.1 server ----------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dependency-free HTTP/1.1 server for `kremlin serve`: a blocking
/// accept loop on a dedicated thread hands each connection to a
/// support/ThreadPool worker, which reads one request, invokes the
/// registered handler, writes the response, and closes ("Connection:
/// close" — fleet clients are short-lived uploaders/fetchers, so
/// keep-alive buys nothing and connection state stays trivial).
///
/// The request parser is exposed separately so it is unit-testable without
/// sockets. Budgets (header bytes, body bytes) are enforced while reading:
/// an oversized upload is answered with 413 before the body is buffered
/// past the limit, so a hostile client cannot balloon server memory.
/// Per-connection read/write deadlines answer a stalled (slowloris) client
/// with 408 and reclaim the worker; optional Admit/Release hooks let the
/// service layer bound the pending-request queue and shed on the accept
/// thread with 503 + Retry-After before a request is even read.
///
/// A matching blocking client (http::request) exists for tests and drills;
/// it speaks exactly the subset the server emits.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_HTTP_H
#define KREMLIN_SUPPORT_HTTP_H

#include "support/Status.h"
#include "support/Telemetry.h"
#include "support/ThreadPool.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace kremlin::http {

/// One parsed request. Header names are lowercased; the target is split
/// into a percent-decoded path and query map.
struct Request {
  std::string Method;  ///< "GET", "POST", ... (uppercase as sent).
  std::string Target;  ///< Raw request target ("/profile?format=tree").
  std::string Path;    ///< Decoded path ("/profile").
  std::map<std::string, std::string> Query; ///< Decoded query parameters.
  std::vector<std::pair<std::string, std::string>> Headers;
  std::string Body;

  /// Trace context for this request. The server fills these before the
  /// handler runs: TraceId/ParentSpanId come from a well-formed inbound
  /// `traceparent` header, otherwise a fresh trace id is minted (and
  /// ParentSpanId stays empty). Malformed or oversized traceparent values
  /// are counted (http.traceparent_invalid) and ignored — the request is
  /// served under a fresh id, never refused.
  std::string TraceId;       ///< 32 lowercase hex chars, always set.
  std::string ParentSpanId;  ///< 16 hex chars when propagated, else empty.
  /// Microseconds this connection waited between accept(2) and a worker
  /// picking it up — the queue-wait component of request latency.
  uint64_t QueueWaitUs = 0;

  /// Case-insensitive header lookup (names are stored lowercased);
  /// nullptr when absent.
  const std::string *header(std::string_view Name) const;

  /// Query parameter with default.
  std::string query(const std::string &Key,
                    const std::string &Default = "") const {
    auto It = Query.find(Key);
    return It == Query.end() ? Default : It->second;
  }
};

/// The trace context the service layer should handle \p Req under: the
/// request's pre-filled TraceId/ParentSpanId when the transport set them,
/// else parsed from a `traceparent` header, else freshly minted. Exposed so
/// handler tests without sockets get the same behavior as the server path.
telemetry::TraceContext requestTraceContext(const Request &Req);

/// One response. The server adds Content-Length and Connection headers;
/// anything in Headers (e.g. Retry-After) is emitted verbatim before them.
struct Response {
  int Code = 200;
  std::string ContentType = "text/plain; charset=utf-8";
  std::vector<std::pair<std::string, std::string>> Headers;
  std::string Body;

  static Response text(int Code, std::string Body) {
    Response R;
    R.Code = Code;
    R.Body = std::move(Body);
    return R;
  }
  static Response json(int Code, std::string Body) {
    Response R = text(Code, std::move(Body));
    R.ContentType = "application/json";
    return R;
  }

  /// Copy of this response with one extra header appended.
  Response withHeader(std::string Name, std::string Value) const {
    Response R = *this;
    R.Headers.emplace_back(std::move(Name), std::move(Value));
    return R;
  }
  /// Copy with a `Retry-After: <Secs>` header — the backoff hint every
  /// overload (503) and rate-limit (429) response should carry so clients
  /// know how long to wait before retrying.
  Response withRetryAfter(unsigned Secs) const {
    return withHeader("Retry-After", std::to_string(Secs));
  }
};

/// Standard reason phrase for \p Code ("OK", "Not Found", ...).
const char *reasonPhrase(int Code);

/// Parses the request head (start line + headers, no body). \p Head spans
/// up to and excluding the blank line. Exposed for tests.
Expected<Request> parseRequestHead(std::string_view Head);

/// Percent-decodes \p Text ("+" also decodes to space, form-style).
std::string urlDecode(std::string_view Text);

/// Serializes \p R as a complete HTTP/1.1 message (status line, headers,
/// Content-Length, Connection: close, body).
std::string serializeResponse(const Response &R);

/// Server geometry and budgets.
struct ServerOptions {
  /// TCP port to bind on 127.0.0.1; 0 = kernel-assigned (port() tells).
  uint16_t Port = 0;
  /// Handler worker threads.
  unsigned Threads = 4;
  /// Reject request bodies larger than this with 413.
  size_t MaxBodyBytes = 64ull << 20;
  /// Reject request heads larger than this with 431.
  size_t MaxHeaderBytes = 16384;
  /// listen(2) backlog.
  int Backlog = 128;
  /// Per-connection read deadline in seconds: a client that stalls
  /// mid-request (slowloris) is answered 408 and dropped instead of
  /// wedging a worker indefinitely.
  unsigned RecvTimeoutSec = 10;
  /// Per-connection write deadline in seconds: a client that accepts the
  /// request but never drains the response releases its worker too.
  unsigned SendTimeoutSec = 10;
  /// Admission control, called on the accept thread before a connection
  /// is queued for a worker. Return false to shed: the server answers
  /// RejectResponse and closes without reading the request (the cheapest
  /// possible refusal — no parse, no worker). Release runs exactly once
  /// per admitted connection when its handling finishes, however it ends.
  std::function<bool()> Admit;
  std::function<void()> Release;
  /// Sent when Admit() returns false.
  Response RejectResponse =
      Response::text(503, "server overloaded\n").withRetryAfter(1);
  /// Called when a read deadline expires and the server answers 408, so
  /// the service layer can fold timeouts into its request accounting.
  std::function<void()> OnReadTimeout;
};

/// The embedded server. start() binds and begins accepting immediately;
/// stop() (or destruction) shuts the listener down and drains in-flight
/// handlers.
class Server {
public:
  using Handler = std::function<Response(const Request &)>;

  /// Binds 127.0.0.1:<Port> and starts the accept loop. IoError with the
  /// failing syscall's detail when the socket cannot be set up.
  static Expected<std::unique_ptr<Server>> start(ServerOptions Opts,
                                                 Handler Handle);

  ~Server();
  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// The bound port (resolves 0 to the kernel's pick).
  uint16_t port() const { return BoundPort; }

  /// Blocks until stop() is called (from another thread or a signal
  /// handler path) — the `kremlin serve` foreground wait.
  void wait();

  /// Stops accepting, wakes the accept loop, and drains workers.
  /// Idempotent.
  void stop();

private:
  Server() = default;

  void acceptLoop();
  /// \p AcceptUs is the accept(2) timestamp; the gap to the worker picking
  /// the connection up becomes Request::QueueWaitUs.
  void handleConnection(int Fd, uint64_t AcceptUs);

  ServerOptions Opts;
  Handler Handle;
  int ListenFd = -1;
  uint16_t BoundPort = 0;
  std::atomic<bool> Stopping{false};
  std::thread Acceptor;
  std::unique_ptr<ThreadPool> Pool;
};

/// Blocking one-shot client response.
struct ClientResponse {
  int Code = 0;
  std::vector<std::pair<std::string, std::string>> Headers; ///< Lowercased.
  std::string Body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string *header(std::string_view Name) const;
  /// Parses a `Retry-After: <seconds>` header; 0 when absent/unparseable.
  unsigned retryAfterSec() const;
};

/// Performs one HTTP/1.1 request against \p Host:\p Port and reads the
/// full response (the server closes the connection). For tests, the soak
/// drill, `kremlin push`, and CLI health checks. \p ExtraHeaders are sent
/// verbatim (e.g. Idempotency-Key); \p TimeoutMs, when nonzero, bounds
/// each send/recv so a wedged server surfaces as IoError instead of a
/// hang.
Expected<ClientResponse>
request(const std::string &Host, uint16_t Port, const std::string &Method,
        const std::string &Target, const std::string &Body = "",
        const std::string &ContentType = "",
        const std::vector<std::pair<std::string, std::string>>
            &ExtraHeaders = {},
        unsigned TimeoutMs = 0);

} // namespace kremlin::http

#endif // KREMLIN_SUPPORT_HTTP_H
