//===- support/ErrorHandling.h - Fatal errors and unreachable ---*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Programmatic-error helpers in the spirit of llvm/Support/ErrorHandling.h:
/// kremlin_unreachable() marks code paths that must never execute, and
/// reportFatalError() aborts on unrecoverable environment errors (bad input
/// files, malformed sources) with a readable message.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_ERRORHANDLING_H
#define KREMLIN_SUPPORT_ERRORHANDLING_H

#include <string_view>

namespace kremlin {

/// Prints \p Msg (with file/line context) to stderr and aborts. Used for
/// invariant violations that must be diagnosed even in release builds.
[[noreturn]] void reportFatalError(std::string_view Msg, const char *File,
                                   unsigned Line);

} // namespace kremlin

/// Marks a point in code that should never be reached.
#define kremlin_unreachable(MSG)                                               \
  ::kremlin::reportFatalError("unreachable: " MSG, __FILE__, __LINE__)

/// Aborts with \p MSG when an unrecoverable (non-programmatic) error occurs.
#define kremlin_fatal(MSG) ::kremlin::reportFatalError(MSG, __FILE__, __LINE__)

#endif // KREMLIN_SUPPORT_ERRORHANDLING_H
