//===- support/Prng.h - Deterministic pseudo-random numbers -----*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64-based deterministic PRNG. All randomized behaviour in the
/// project (workload generation, property tests) goes through this class so
/// experiments are exactly reproducible from a seed.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_PRNG_H
#define KREMLIN_SUPPORT_PRNG_H

#include <cassert>
#include <cstdint>

namespace kremlin {

/// Small, fast, deterministic PRNG (SplitMix64).
class Prng {
public:
  explicit Prng(uint64_t Seed) : State(Seed) {}

  /// Returns the next 64-bit pseudo-random value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t nextBelow(uint64_t Bound) {
    assert(Bound > 0 && "nextBelow requires a positive bound");
    return next() % Bound;
  }

  /// Returns a value uniformly distributed in [Lo, Hi] (inclusive).
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "nextInRange requires Lo <= Hi");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a double uniformly distributed in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns true with probability \p P (clamped to [0, 1]).
  bool nextBool(double P) { return nextDouble() < P; }

private:
  uint64_t State;
};

} // namespace kremlin

#endif // KREMLIN_SUPPORT_PRNG_H
