//===- support/FileIO.cpp -------------------------------------------------===//

#include "support/FileIO.h"

#include "support/StringUtils.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

using namespace kremlin;

Status kremlin::atomicWriteFile(const std::string &Path,
                                std::string_view Contents) {
  auto Fail = [&Path](const char *What) {
    return Status::error(ErrorCode::IoError,
                         formatString("%s: %s", What, std::strerror(errno)))
        .withStage("atomic-write")
        .withInput(Path);
  };

  std::string Tmp = Path + AtomicWriteTmpSuffix;
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
  if (Fd < 0)
    return Fail("open(tmp)");
  size_t Off = 0;
  while (Off < Contents.size()) {
    ssize_t N = ::write(Fd, Contents.data() + Off, Contents.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      Status St = Fail("write");
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return St;
    }
    Off += static_cast<size_t>(N);
  }
  // The data must be on disk before the rename publishes it, or a crash
  // could promote a zero-length/torn temp into place.
  if (::fsync(Fd) != 0) {
    Status St = Fail("fsync(tmp)");
    ::close(Fd);
    ::unlink(Tmp.c_str());
    return St;
  }
  if (::close(Fd) != 0)
    return Fail("close(tmp)");
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Status St = Fail("rename");
    ::unlink(Tmp.c_str());
    return St;
  }

  // Make the rename itself durable: fsync the containing directory. Best
  // effort on filesystems that refuse O_DIRECTORY fsync — the data file
  // itself is already synced.
  size_t Slash = Path.find_last_of('/');
  std::string DirPath = Slash == std::string::npos ? "." : Path.substr(0, Slash);
  if (DirPath.empty())
    DirPath = "/";
  int DirFd = ::open(DirPath.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (DirFd >= 0) {
    ::fsync(DirFd);
    ::close(DirFd);
  }
  return Status::success();
}
