//===- support/Status.h - Recoverable errors as values ----------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style recoverable-error values. Kremlin profiles *arbitrary* user
/// programs, so every failure a hostile input can provoke — parse errors,
/// corrupt traces, resource blow-ups — must travel back to the caller as a
/// value instead of aborting the process (kremlin_fatal is reserved for
/// genuine internal invariant violations; see ErrorHandling.h).
///
/// A Status is either ok() or carries an ErrorCode, a message, and optional
/// context: the pipeline stage that failed and the input file involved, so
/// the one-line rendering is actionable ("stage 'execute' failed for
/// 'ft.c': shadow-memory byte budget (16 MB) exceeded").
///
/// Expected<T> is a Status-or-value union for factory-style APIs:
///
///   Expected<DictionaryCompressor> D = readTraceFile(Path);
///   if (!D.ok())
///     return D.status();
///   use(*D);
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_STATUS_H
#define KREMLIN_SUPPORT_STATUS_H

#include <cassert>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace kremlin {

/// Coarse error classification; the distinctions the callers act on
/// (retry, budget report, diagnostics) rather than one code per message.
enum class ErrorCode : unsigned char {
  Ok = 0,
  /// Caller passed something unusable (unknown benchmark, bad flag value).
  InvalidArgument,
  /// The profiled source failed to lex/parse/lower.
  ParseError,
  /// A serialized artifact (compressed trace, metrics JSON) is malformed.
  DecodeError,
  /// The profiled program misbehaved at run time (OOB access, no main).
  ExecutionError,
  /// A configured budget tripped (shadow bytes, region depth, step count).
  ResourceExhausted,
  /// A wall-clock deadline elapsed (bench harness per-benchmark cap).
  DeadlineExceeded,
  /// The filesystem said no.
  IoError,
  /// A KREMLIN_FAULT injection point fired (tests / fault drills).
  FaultInjected,
  /// An internal invariant almost aborted; surfaced as a value instead.
  Internal,
};

/// Short kebab-case name for diagnostics ("resource-exhausted").
inline const char *errorCodeName(ErrorCode Code) {
  switch (Code) {
  case ErrorCode::Ok:
    return "ok";
  case ErrorCode::InvalidArgument:
    return "invalid-argument";
  case ErrorCode::ParseError:
    return "parse-error";
  case ErrorCode::DecodeError:
    return "decode-error";
  case ErrorCode::ExecutionError:
    return "execution-error";
  case ErrorCode::ResourceExhausted:
    return "resource-exhausted";
  case ErrorCode::DeadlineExceeded:
    return "deadline-exceeded";
  case ErrorCode::IoError:
    return "io-error";
  case ErrorCode::FaultInjected:
    return "fault-injected";
  case ErrorCode::Internal:
    return "internal";
  }
  return "unknown";
}

/// An ok-or-error value. The ok state is a null pointer, so passing
/// successes around is free; error payloads are shared on copy (a Status is
/// written once at the failure site and only read afterwards).
class [[nodiscard]] Status {
public:
  /// Default-constructed Status is ok.
  Status() = default;

  /// Named ok-constructor (reads better at return sites than `Status()`).
  static Status success() { return Status(); }

  static Status error(ErrorCode Code, std::string Msg) {
    assert(Code != ErrorCode::Ok && "error() requires a non-ok code");
    Status S;
    S.Info = std::make_shared<Payload>();
    S.Info->Code = Code;
    S.Info->Message = std::move(Msg);
    return S;
  }

  bool ok() const { return Info == nullptr; }
  ErrorCode code() const { return Info ? Info->Code : ErrorCode::Ok; }

  const std::string &message() const { return Info ? Info->Message : empty(); }
  const std::string &stage() const { return Info ? Info->Stage : empty(); }
  const std::string &input() const { return Info ? Info->Input : empty(); }

  /// Attaches the failing pipeline stage ("parse", "execute", ...). The
  /// innermost (first) setter wins, so layered callers can add context
  /// unconditionally.
  Status &withStage(std::string_view Stage) {
    if (Info && Info->Stage.empty())
      Info->Stage = Stage;
    return *this;
  }

  /// Attaches the input file/benchmark name. Innermost setter wins.
  Status &withInput(std::string_view Input) {
    if (Info && Info->Input.empty())
      Info->Input = Input;
    return *this;
  }

  /// One actionable line:
  ///   stage 'execute' failed for 'ft.c': <message> [resource-exhausted]
  /// Context pieces are omitted when absent.
  std::string toString() const {
    if (ok())
      return "ok";
    std::string Out;
    if (!stage().empty())
      Out += "stage '" + stage() + "' failed";
    if (!input().empty())
      Out += (Out.empty() ? "failed for '" : " for '") + input() + "'";
    if (!Out.empty())
      Out += ": ";
    Out += message();
    Out += std::string(" [") + errorCodeName(code()) + "]";
    return Out;
  }

private:
  struct Payload {
    ErrorCode Code = ErrorCode::Internal;
    std::string Message;
    std::string Stage;
    std::string Input;
  };

  static const std::string &empty() {
    static const std::string E;
    return E;
  }

  std::shared_ptr<Payload> Info;
};

/// A T-or-Status union. Implicitly constructible from either side so
/// factories can `return Status::error(...)` or `return Value` directly.
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T Value) : Val(std::move(Value)) {}
  Expected(Status S) : St(std::move(S)) {
    assert(!St.ok() && "Expected built from an ok Status carries no value");
  }

  bool ok() const { return Val.has_value(); }

  /// The error; Status::ok() when a value is present.
  const Status &status() const { return St; }

  T &value() {
    assert(ok() && "value() on an errored Expected");
    return *Val;
  }
  const T &value() const {
    assert(ok() && "value() on an errored Expected");
    return *Val;
  }

  T &operator*() { return value(); }
  const T &operator*() const { return value(); }
  T *operator->() { return &value(); }
  const T *operator->() const { return &value(); }

  /// Moves the value out (the Expected is then exhausted).
  T takeValue() {
    assert(ok() && "takeValue() on an errored Expected");
    return std::move(*Val);
  }

private:
  std::optional<T> Val;
  Status St;
};

} // namespace kremlin

#endif // KREMLIN_SUPPORT_STATUS_H
