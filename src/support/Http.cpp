//===- support/Http.cpp ---------------------------------------------------===//

#include "support/Http.h"

#include "support/StringUtils.h"
#include "support/Telemetry.h"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace kremlin;
using namespace kremlin::http;
namespace tel = kremlin::telemetry;

// --- Parsing ----------------------------------------------------------------

namespace {

/// Shared case-insensitive lookup over lowercased-name header lists.
const std::string *
findHeader(const std::vector<std::pair<std::string, std::string>> &Headers,
           std::string_view Name) {
  std::string Lower(Name);
  std::transform(Lower.begin(), Lower.end(), Lower.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  for (const auto &[K, V] : Headers)
    if (K == Lower)
      return &V;
  return nullptr;
}

} // namespace

const std::string *Request::header(std::string_view Name) const {
  return findHeader(Headers, Name);
}

const std::string *ClientResponse::header(std::string_view Name) const {
  return findHeader(Headers, Name);
}

unsigned ClientResponse::retryAfterSec() const {
  const std::string *V = header("retry-after");
  return V ? static_cast<unsigned>(std::strtoul(V->c_str(), nullptr, 10)) : 0;
}

tel::TraceContext http::requestTraceContext(const Request &Req) {
  // Transport already resolved it (server path re-entering via handler
  // helpers, or a test that pre-filled the fields).
  if (!Req.TraceId.empty())
    return {Req.TraceId, Req.ParentSpanId};
  if (const std::string *TP = Req.header("traceparent")) {
    tel::TraceContext Ctx;
    if (tel::parseTraceparent(*TP, Ctx))
      return Ctx;
    // Malformed/oversized/garbage header: count it and serve the request
    // under a fresh id — a bad client must not lose its own request.
    tel::Registry::global().counter("http.traceparent_invalid").add();
  }
  tel::TraceContext Fresh = tel::mintTraceContext();
  Fresh.SpanId.clear(); // No inbound parent span.
  return Fresh;
}

std::string http::urlDecode(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (size_t I = 0; I < Text.size(); ++I) {
    char C = Text[I];
    if (C == '+') {
      Out += ' ';
    } else if (C == '%' && I + 2 < Text.size() &&
               std::isxdigit(static_cast<unsigned char>(Text[I + 1])) &&
               std::isxdigit(static_cast<unsigned char>(Text[I + 2]))) {
      auto Hex = [](char H) {
        return H <= '9' ? H - '0' : (H | 0x20) - 'a' + 10;
      };
      Out += static_cast<char>(Hex(Text[I + 1]) * 16 + Hex(Text[I + 2]));
      I += 2;
    } else {
      Out += C;
    }
  }
  return Out;
}

const char *http::reasonPhrase(int Code) {
  switch (Code) {
  case 200:
    return "OK";
  case 201:
    return "Created";
  case 204:
    return "No Content";
  case 400:
    return "Bad Request";
  case 404:
    return "Not Found";
  case 405:
    return "Method Not Allowed";
  case 408:
    return "Request Timeout";
  case 409:
    return "Conflict";
  case 413:
    return "Payload Too Large";
  case 429:
    return "Too Many Requests";
  case 431:
    return "Request Header Fields Too Large";
  case 500:
    return "Internal Server Error";
  case 503:
    return "Service Unavailable";
  }
  return Code < 400 ? "OK" : "Error";
}

Expected<Request> http::parseRequestHead(std::string_view Head) {
  auto Bad = [](std::string Msg) {
    return Status::error(ErrorCode::DecodeError, std::move(Msg))
        .withStage("http-parse");
  };
  Request Req;
  size_t LineEnd = Head.find("\r\n");
  std::string_view StartLine =
      LineEnd == std::string_view::npos ? Head : Head.substr(0, LineEnd);
  size_t Sp1 = StartLine.find(' ');
  size_t Sp2 = StartLine.rfind(' ');
  if (Sp1 == std::string_view::npos || Sp2 == Sp1)
    return Bad("malformed request line");
  Req.Method = std::string(StartLine.substr(0, Sp1));
  Req.Target = std::string(StartLine.substr(Sp1 + 1, Sp2 - Sp1 - 1));
  std::string_view Proto = StartLine.substr(Sp2 + 1);
  if (Req.Method.empty() || Req.Target.empty() || Req.Target[0] != '/')
    return Bad("malformed request line");
  if (Proto.rfind("HTTP/1.", 0) != 0)
    return Bad("unsupported protocol '" + std::string(Proto) + "'");

  // Split target into decoded path + query parameters.
  std::string_view Target = Req.Target;
  size_t Q = Target.find('?');
  Req.Path = urlDecode(Target.substr(0, Q));
  if (Q != std::string_view::npos) {
    for (const std::string &Pair :
         splitString(std::string(Target.substr(Q + 1)), '&')) {
      if (Pair.empty())
        continue;
      size_t Eq = Pair.find('=');
      std::string Key = urlDecode(std::string_view(Pair).substr(0, Eq));
      std::string Val = Eq == std::string::npos
                            ? std::string()
                            : urlDecode(std::string_view(Pair).substr(Eq + 1));
      Req.Query[Key] = std::move(Val);
    }
  }

  // Header fields: "Name: value" lines, names lowercased.
  size_t Pos = LineEnd == std::string_view::npos ? Head.size() : LineEnd + 2;
  while (Pos < Head.size()) {
    size_t End = Head.find("\r\n", Pos);
    std::string_view Line = Head.substr(
        Pos, End == std::string_view::npos ? std::string_view::npos
                                           : End - Pos);
    Pos = End == std::string_view::npos ? Head.size() : End + 2;
    if (Line.empty())
      continue;
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      return Bad("malformed header line");
    std::string Name(trimString(Line.substr(0, Colon)));
    std::transform(Name.begin(), Name.end(), Name.begin(),
                   [](unsigned char C) { return std::tolower(C); });
    Req.Headers.emplace_back(std::move(Name),
                             std::string(trimString(Line.substr(Colon + 1))));
  }
  return Req;
}

std::string http::serializeResponse(const Response &R) {
  std::string Out = formatString("HTTP/1.1 %d %s\r\n", R.Code,
                                 reasonPhrase(R.Code));
  Out += "Content-Type: " + R.ContentType + "\r\n";
  for (const auto &[Name, Value] : R.Headers)
    Out += Name + ": " + Value + "\r\n";
  Out += formatString("Content-Length: %zu\r\n", R.Body.size());
  Out += "Connection: close\r\n\r\n";
  Out += R.Body;
  return Out;
}

// --- Socket helpers ---------------------------------------------------------

namespace {

/// Sends the whole buffer; false on any socket error.
bool sendAll(int Fd, std::string_view Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N <= 0)
      return false;
    Off += static_cast<size_t>(N);
  }
  return true;
}

void answer(int Fd, const Response &R) {
  sendAll(Fd, serializeResponse(R));
}

} // namespace

// --- Server -----------------------------------------------------------------

Expected<std::unique_ptr<Server>> Server::start(ServerOptions Opts,
                                                Handler Handle) {
  auto Fail = [](const char *What) {
    return Status::error(ErrorCode::IoError,
                         formatString("%s: %s", What, std::strerror(errno)))
        .withStage("http-listen");
  };
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("socket");
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));

  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  Addr.sin_port = htons(Opts.Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status St = Fail("bind");
    ::close(Fd);
    return St;
  }
  if (::listen(Fd, Opts.Backlog) != 0) {
    Status St = Fail("listen");
    ::close(Fd);
    return St;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) != 0) {
    Status St = Fail("getsockname");
    ::close(Fd);
    return St;
  }

  std::unique_ptr<Server> S(new Server());
  S->Opts = Opts;
  S->Handle = std::move(Handle);
  S->ListenFd = Fd;
  S->BoundPort = ntohs(Addr.sin_port);
  S->Pool = std::make_unique<ThreadPool>(std::max(1u, Opts.Threads));
  S->Acceptor = std::thread([Srv = S.get()] { Srv->acceptLoop(); });
  return S;
}

Server::~Server() { stop(); }

void Server::wait() {
  // The accept loop ends only through stop(); joining it is the
  // foreground wait. stop() (from a signal/another thread) joins first,
  // so only wait when the thread is still ours to join.
  if (Acceptor.joinable())
    Acceptor.join();
}

void Server::stop() {
  if (Stopping.exchange(true))
    return;
  // Wake the blocking accept: shutdown() interrupts it on Linux; the
  // self-connect is the portable backup nudge.
  ::shutdown(ListenFd, SHUT_RDWR);
  int Nudge = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Nudge >= 0) {
    sockaddr_in Addr{};
    Addr.sin_family = AF_INET;
    Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    Addr.sin_port = htons(BoundPort);
    ::connect(Nudge, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr));
    ::close(Nudge);
  }
  if (Acceptor.joinable() &&
      Acceptor.get_id() != std::this_thread::get_id())
    Acceptor.join();
  Pool->wait();
  ::close(ListenFd);
  ListenFd = -1;
}

void Server::acceptLoop() {
  while (!Stopping.load(std::memory_order_relaxed)) {
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0) {
      if (Stopping.load(std::memory_order_relaxed) || errno == EBADF ||
          errno == EINVAL)
        break;
      continue; // EINTR/ECONNABORTED: keep accepting.
    }
    if (Stopping.load(std::memory_order_relaxed)) {
      ::close(Fd);
      break;
    }
    tel::Registry::global().counter("http.connections").add();
    // Admission runs here, on the accept thread, so an overloaded server
    // sheds before the connection consumes a queue slot or a worker: the
    // reject response is a few hundred bytes, which the socket send buffer
    // absorbs without blocking the accept loop.
    if (Opts.Admit && !Opts.Admit()) {
      tel::Registry::global().counter("http.shed").add();
      answer(Fd, Opts.RejectResponse);
      // The client is still mid-send: closing with its request unread
      // would RST the connection and discard the 503 we just wrote.
      // Half-close our side and drain (briefly, boundedly — this runs on
      // the accept thread) until the client sees the response and hangs
      // up, then close for real.
      ::shutdown(Fd, SHUT_WR);
      timeval Tv{};
      Tv.tv_sec = 1;
      ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Tv, sizeof(Tv));
      char Scratch[4096];
      for (unsigned I = 0; I < 16; ++I)
        if (::recv(Fd, Scratch, sizeof(Scratch), 0) <= 0)
          break;
      ::close(Fd);
      continue;
    }
    uint64_t AcceptUs = tel::nowUs();
    Pool->submit([this, Fd, AcceptUs] { handleConnection(Fd, AcceptUs); });
  }
}

void Server::handleConnection(int Fd, uint64_t AcceptUs) {
  // Time spent between accept(2) and this worker picking the connection
  // up — the queue-wait the service layer folds into request latency.
  uint64_t QueueWaitUs = tel::nowUs() - AcceptUs;
  // Pair every admitted connection with exactly one Release, however the
  // handling ends (response, timeout, disconnect, handler exception).
  struct ReleaseGuard {
    const std::function<void()> &Fn;
    ~ReleaseGuard() {
      if (Fn)
        Fn();
    }
  } Guard{Opts.Release};

  timeval Timeout{};
  Timeout.tv_sec = Opts.RecvTimeoutSec;
  ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
  timeval SendTimeout{};
  SendTimeout.tv_sec = Opts.SendTimeoutSec;
  ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &SendTimeout, sizeof(SendTimeout));

  // A recv that fails with EAGAIN/EWOULDBLOCK hit the read deadline: the
  // client is stalling mid-request (slowloris or a dead peer). Answer 408
  // and reclaim the worker; a clean disconnect (recv == 0) stays silent.
  // TimeoutTraceId is filled once the head has parsed, so a mid-body 408
  // still lands in the trace under the request's id.
  std::string TimeoutTraceId;
  auto TimedOut = [&Fd, &TimeoutTraceId, this]() {
    if (errno != EAGAIN && errno != EWOULDBLOCK)
      return false;
    tel::Registry::global().counter("http.timeouts").add();
    if (!TimeoutTraceId.empty())
      tel::instantEvent("http.timeout", "serve",
                        {{"trace_id", TimeoutTraceId}});
    if (Opts.OnReadTimeout)
      Opts.OnReadTimeout();
    answer(Fd, Response::text(408, "request read deadline exceeded\n"));
    return true;
  };

  // Read until the blank line ending the head, within the header budget.
  std::string Buf;
  size_t HeadEnd = std::string::npos;
  char Chunk[4096];
  while (HeadEnd == std::string::npos) {
    if (Buf.size() > Opts.MaxHeaderBytes) {
      answer(Fd, Response::text(431, "request head too large\n"));
      ::close(Fd);
      return;
    }
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0) {
      if (N < 0)
        TimedOut();
      ::close(Fd); // Client went away (or the stop() nudge connection).
      return;
    }
    Buf.append(Chunk, static_cast<size_t>(N));
    HeadEnd = Buf.find("\r\n\r\n");
  }
  // The in-loop check only catches heads still incomplete at the budget;
  // one that arrives whole in a single read must be rejected too.
  if (HeadEnd > Opts.MaxHeaderBytes) {
    answer(Fd, Response::text(431, "request head too large\n"));
    ::close(Fd);
    return;
  }

  Expected<Request> Parsed = parseRequestHead(
      std::string_view(Buf).substr(0, HeadEnd));
  if (!Parsed.ok()) {
    tel::Registry::global().counter("http.parse_errors").add();
    answer(Fd, Response::text(400, Parsed.status().toString() + "\n"));
    ::close(Fd);
    return;
  }
  Request Req = Parsed.takeValue();
  Req.QueueWaitUs = QueueWaitUs;
  tel::TraceContext Ctx = requestTraceContext(Req);
  Req.TraceId = Ctx.TraceId;
  Req.ParentSpanId = Ctx.SpanId;
  TimeoutTraceId = Req.TraceId;

  // Body: exactly Content-Length bytes, within the body budget.
  size_t BodyLen = 0;
  if (const std::string *CL = Req.header("content-length"))
    BodyLen = static_cast<size_t>(std::strtoull(CL->c_str(), nullptr, 10));
  if (BodyLen > Opts.MaxBodyBytes) {
    answer(Fd, Response::text(413, formatString(
                                       "request body (%zu bytes) exceeds "
                                       "the %zu-byte limit\n",
                                       BodyLen, Opts.MaxBodyBytes)));
    ::close(Fd);
    return;
  }
  Req.Body = Buf.substr(HeadEnd + 4);
  while (Req.Body.size() < BodyLen) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N <= 0) {
      if (N < 0)
        TimedOut();
      ::close(Fd);
      return;
    }
    Req.Body.append(Chunk, static_cast<size_t>(N));
  }
  Req.Body.resize(BodyLen);

  Response Resp;
  try {
    Resp = Handle(Req);
  } catch (const std::exception &E) {
    // A handler bug must not take the fleet endpoint down with it.
    tel::Registry::global().counter("http.handler_exceptions").add();
    Resp = Response::text(500, formatString("internal error: %s\n",
                                            E.what()));
  }
  answer(Fd, Resp);
  ::close(Fd);
}

// --- Client -----------------------------------------------------------------

Expected<ClientResponse> http::request(
    const std::string &Host, uint16_t Port, const std::string &Method,
    const std::string &Target, const std::string &Body,
    const std::string &ContentType,
    const std::vector<std::pair<std::string, std::string>> &ExtraHeaders,
    unsigned TimeoutMs) {
  auto Fail = [](const char *What) {
    return Status::error(ErrorCode::IoError,
                         formatString("%s: %s", What, std::strerror(errno)))
        .withStage("http-client");
  };
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0)
    return Fail("socket");
  if (TimeoutMs > 0) {
    timeval Timeout{};
    Timeout.tv_sec = TimeoutMs / 1000;
    Timeout.tv_usec = static_cast<suseconds_t>(TimeoutMs % 1000) * 1000;
    ::setsockopt(Fd, SOL_SOCKET, SO_RCVTIMEO, &Timeout, sizeof(Timeout));
    ::setsockopt(Fd, SOL_SOCKET, SO_SNDTIMEO, &Timeout, sizeof(Timeout));
  }
  sockaddr_in Addr{};
  Addr.sin_family = AF_INET;
  Addr.sin_port = htons(Port);
  if (::inet_pton(AF_INET, Host.c_str(), &Addr.sin_addr) != 1) {
    ::close(Fd);
    return Status::error(ErrorCode::InvalidArgument,
                         "not an IPv4 address: " + Host)
        .withStage("http-client");
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) != 0) {
    Status St = Fail("connect");
    ::close(Fd);
    return St;
  }

  std::string Msg = Method + " " + Target + " HTTP/1.1\r\n";
  Msg += "Host: " + Host + "\r\n";
  for (const auto &[Name, Value] : ExtraHeaders)
    Msg += Name + ": " + Value + "\r\n";
  if (!Body.empty() || Method == "POST") {
    Msg += formatString("Content-Length: %zu\r\n", Body.size());
    if (!ContentType.empty())
      Msg += "Content-Type: " + ContentType + "\r\n";
  }
  Msg += "Connection: close\r\n\r\n";
  Msg += Body;
  if (!sendAll(Fd, Msg)) {
    Status St = Fail("send");
    ::close(Fd);
    return St;
  }

  // The server closes after one response: read to EOF.
  std::string Raw;
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      Status St = Fail("recv");
      ::close(Fd);
      return St;
    }
    if (N == 0)
      break;
    Raw.append(Chunk, static_cast<size_t>(N));
  }
  ::close(Fd);

  size_t HeadEnd = Raw.find("\r\n\r\n");
  if (Raw.rfind("HTTP/1.", 0) != 0 || HeadEnd == std::string::npos)
    return Status::error(ErrorCode::DecodeError, "malformed HTTP response")
        .withStage("http-client");
  ClientResponse Resp;
  size_t CodePos = Raw.find(' ');
  Resp.Code = static_cast<int>(std::strtol(Raw.c_str() + CodePos + 1,
                                           nullptr, 10));
  size_t Pos = Raw.find("\r\n") + 2;
  while (Pos < HeadEnd) {
    size_t End = Raw.find("\r\n", Pos);
    std::string_view Line = std::string_view(Raw).substr(Pos, End - Pos);
    Pos = End + 2;
    size_t Colon = Line.find(':');
    if (Colon == std::string_view::npos)
      continue;
    std::string Name(trimString(Line.substr(0, Colon)));
    std::transform(Name.begin(), Name.end(), Name.begin(),
                   [](unsigned char C) { return std::tolower(C); });
    Resp.Headers.emplace_back(std::move(Name),
                              std::string(trimString(Line.substr(Colon + 1))));
  }
  Resp.Body = Raw.substr(HeadEnd + 4);
  return Resp;
}
