//===- support/AccessLog.cpp - Bounded JSON-lines access log --------------===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/AccessLog.h"

#include "support/Telemetry.h"

#include <cstdio>

namespace tel = kremlin::telemetry;

namespace kremlin {

namespace {

FILE *asFile(void *P) { return static_cast<FILE *>(P); }

// Minimal JSON string quoting; access-log fields are ASCII (methods, paths,
// hex ids) but a hostile request target can still carry anything.
std::string jsonQuote(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 2);
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
  return Out;
}

} // namespace

Expected<std::unique_ptr<AccessLog>> AccessLog::open(std::string Path,
                                                     size_t FlushBytes) {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return Status::error(ErrorCode::IoError,
                         "cannot open access log '" + Path + "'");
  auto Log = std::unique_ptr<AccessLog>(new AccessLog());
  Log->Path = std::move(Path);
  Log->File = F;
  Log->FlushBytes = FlushBytes == 0 ? 1 : FlushBytes;
  Log->Buf.reserve(Log->FlushBytes + 512);
  return Log;
}

AccessLog::~AccessLog() { (void)close(); }

void AccessLog::append(const AccessLogEntry &E) {
  std::string Line;
  Line.reserve(256);
  Line += "{\"ts_us\": ";
  Line += std::to_string(tel::nowUs());
  Line += ", \"trace_id\": ";
  Line += jsonQuote(E.TraceId);
  Line += ", \"method\": ";
  Line += jsonQuote(E.Method);
  Line += ", \"path\": ";
  Line += jsonQuote(E.Path);
  Line += ", \"status\": ";
  Line += std::to_string(E.Status);
  Line += ", \"bytes_in\": ";
  Line += std::to_string(E.BytesIn);
  Line += ", \"bytes_out\": ";
  Line += std::to_string(E.BytesOut);
  char MsBuf[64];
  std::snprintf(MsBuf, sizeof(MsBuf), ", \"queue_wait_ms\": %.3f",
                static_cast<double>(E.QueueWaitUs) / 1000.0);
  Line += MsBuf;
  std::snprintf(MsBuf, sizeof(MsBuf), ", \"handler_ms\": %.3f",
                static_cast<double>(E.HandlerUs) / 1000.0);
  Line += MsBuf;
  Line += ", \"dedup\": ";
  Line += jsonQuote(E.Dedup);
  Line += "}\n";

  std::lock_guard<std::mutex> Lock(Mutex);
  if (Closed)
    return;
  Buf += Line;
  tel::Registry::global().counter("serve.access_log.lines").add(1);
  flushLocked(/*Force=*/false);
}

void AccessLog::flushLocked(bool Force) {
  if (Buf.empty() || (!Force && Buf.size() < FlushBytes))
    return;
  size_t Written = std::fwrite(Buf.data(), 1, Buf.size(), asFile(File));
  if (Written != Buf.size()) {
    tel::Registry::global().counter("serve.access_log.write_errors").add(1);
    if (CloseStatus.ok())
      CloseStatus = Status::error(ErrorCode::IoError,
                                  "short write to access log '" + Path + "'");
  } else {
    tel::Registry::global().counter("serve.access_log.flushes").add(1);
    tel::Registry::global().counter("serve.access_log.bytes").add(Written);
  }
  Buf.clear();
}

Status AccessLog::close() {
  std::lock_guard<std::mutex> Lock(Mutex);
  if (Closed)
    return CloseStatus;
  flushLocked(/*Force=*/true);
  if (std::fclose(asFile(File)) != 0 && CloseStatus.ok())
    CloseStatus = Status::error(ErrorCode::IoError,
                                "cannot close access log '" + Path + "'");
  File = nullptr;
  Closed = true;
  return CloseStatus;
}

} // namespace kremlin
