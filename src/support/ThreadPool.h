//===- support/ThreadPool.h - Fixed-size task pool --------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool with a single FIFO queue (no work stealing —
/// our workloads are coarse-grained pipeline runs, so a shared queue is
/// both simpler and fair). Tasks are submitted as callables and return
/// std::futures; exceptions thrown by a task propagate through its future.
/// The pool is reusable: wait() drains outstanding work and the pool then
/// accepts new submissions. With one worker the pool executes tasks in
/// strict submission order, which the tests rely on.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_THREADPOOL_H
#define KREMLIN_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace kremlin {

/// Fixed pool of worker threads consuming a shared FIFO queue.
class ThreadPool {
public:
  /// Spawns \p NumThreads workers; 0 means hardware concurrency (at least
  /// one).
  explicit ThreadPool(unsigned NumThreads = 0);

  /// Drains the queue, waits for running tasks, and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(Workers.size()); }

  /// Enqueues \p Fn; the returned future yields its result (or rethrows
  /// its exception).
  template <typename F>
  auto submit(F &&Fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto Task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(Fn));
    std::future<R> Result = Task->get_future();
    enqueue([Task]() { (*Task)(); });
    return Result;
  }

  /// Blocks until every queued and running task has finished. The pool
  /// stays usable afterwards.
  void wait();

  /// Tasks waiting in the queue (racy; for tests and reporting).
  size_t queuedTasks() const;

private:
  void enqueue(std::function<void()> Job);
  void workerLoop();

  mutable std::mutex Mutex;
  std::condition_variable WorkAvailable;
  std::condition_variable AllIdle;
  std::deque<std::function<void()>> Queue;
  std::vector<std::thread> Workers;
  unsigned ActiveTasks = 0;
  bool ShuttingDown = false;
};

} // namespace kremlin

#endif // KREMLIN_SUPPORT_THREADPOOL_H
