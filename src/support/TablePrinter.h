//===- support/TablePrinter.h - Aligned text tables --------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Column-aligned plain-text table rendering used by the planner UI
/// (Figure 3) and by every bench binary that regenerates a paper table.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_TABLEPRINTER_H
#define KREMLIN_SUPPORT_TABLEPRINTER_H

#include <string>
#include <vector>

namespace kremlin {

/// Accumulates rows of string cells and renders them with padded,
/// space-separated columns. Numeric-looking cells are right-aligned.
class TablePrinter {
public:
  /// Sets the header row. Column count is inferred from it.
  void setHeader(std::vector<std::string> Cells);

  /// Appends a data row; short rows are padded with empty cells.
  void addRow(std::vector<std::string> Cells);

  /// Appends a horizontal separator line.
  void addSeparator();

  /// Renders the full table, one trailing newline included.
  std::string render() const;

  /// Number of data rows added so far (separators excluded).
  size_t numRows() const;

private:
  struct Row {
    std::vector<std::string> Cells;
    bool IsSeparator = false;
  };

  std::vector<std::string> Header;
  std::vector<Row> Rows;
};

} // namespace kremlin

#endif // KREMLIN_SUPPORT_TABLEPRINTER_H
