//===- support/Retry.h - Capped jittered exponential backoff ----*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The retry policy behind `kremlin push`: capped exponential backoff with
/// deterministic jitter. Jitter draws from the project's seeded SplitMix64
/// stream (support/Prng.h) keyed by (seed, retry number), so a test can pin
/// the exact backoff schedule while a fleet of real clients (each seeding
/// from its own identity/clock) still de-synchronizes — the thundering-herd
/// property jitter exists for.
///
/// A server's explicit `Retry-After` hint acts as a floor on the computed
/// delay: when the server asks for more patience than our schedule would
/// give, the server wins.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_RETRY_H
#define KREMLIN_SUPPORT_RETRY_H

#include <cstdint>

namespace kremlin {

/// Backoff shape. Defaults suit a loopback/LAN fleet upload.
struct RetryPolicy {
  /// Retries after the first attempt (total attempts = MaxRetries + 1).
  unsigned MaxRetries = 5;
  /// Delay before the first retry, before jitter.
  unsigned BaseDelayMs = 100;
  /// Exponential growth cap.
  unsigned MaxDelayMs = 5000;
  /// Jitter window as a fraction of the full delay: the drawn delay is
  /// uniform in [full * (1 - JitterFrac), full]. 0 = no jitter.
  double JitterFrac = 0.5;
  /// Seed for the deterministic jitter stream.
  uint64_t Seed = 0;
};

/// Computes per-retry delays for one policy. Stateless between calls:
/// delayMs(N) is a pure function of (policy, N), so interrupted/resumed
/// retry loops agree on the schedule.
class Backoff {
public:
  explicit Backoff(const RetryPolicy &Policy) : Policy(Policy) {}

  /// Delay in ms before retry \p Retry (1-based; retry 0 — the first
  /// attempt — is always 0). Full delay is
  /// min(BaseDelayMs * 2^(Retry-1), MaxDelayMs), jittered down by up to
  /// JitterFrac.
  unsigned delayMs(unsigned Retry) const;

  /// Same, honoring a server `Retry-After` hint in seconds: the result is
  /// max(delayMs(Retry), RetryAfterSec * 1000). Pass 0 when the server
  /// sent no hint.
  unsigned delayMs(unsigned Retry, unsigned RetryAfterSec) const;

  const RetryPolicy &policy() const { return Policy; }

private:
  RetryPolicy Policy;
};

/// True for HTTP statuses a client should treat as transient and retry:
/// 408 (request timeout), 429 (too many requests), and all 5xx (including
/// the 503 the serve endpoint sheds with under overload and emits from the
/// ingest fault drill).
bool isRetryableHttpStatus(int Code);

} // namespace kremlin

#endif // KREMLIN_SUPPORT_RETRY_H
