//===- support/FileIO.h - Durable file writes -------------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Crash-safe file replacement. writeStringToFile (support/Json.h) is a
/// plain truncate-and-write: a crash mid-write leaves a torn file, which is
/// fine for bench artifacts but not for the profile store's index. The
/// durable path here is the classic write-temp → fsync → atomic-rename →
/// directory-fsync sequence: after a crash at any point a reader sees
/// either the complete old contents or the complete new contents, never a
/// mix. The worst possible leftover is a stale `<path>.tmp`, which store
/// recovery sweeps on open.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_FILEIO_H
#define KREMLIN_SUPPORT_FILEIO_H

#include "support/Status.h"

#include <string>
#include <string_view>

namespace kremlin {

/// The temp-file suffix atomicWriteFile stages through. Recovery sweeps
/// (and tests) match on it.
inline constexpr const char *AtomicWriteTmpSuffix = ".tmp";

/// Atomically replaces \p Path with \p Contents: writes `<Path>.tmp`,
/// fsyncs it, renames it over \p Path, and fsyncs the parent directory so
/// the rename itself is durable. IoError (naming the failing syscall and
/// path) on failure; a failed write unlinks its temp file, but a crash can
/// still strand one — callers that care sweep `*.tmp` on open.
Status atomicWriteFile(const std::string &Path, std::string_view Contents);

} // namespace kremlin

#endif // KREMLIN_SUPPORT_FILEIO_H
