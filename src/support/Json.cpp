//===- support/Json.cpp ---------------------------------------------------===//

#include "support/Json.h"

#include "support/StringUtils.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

using namespace kremlin;

void JsonValue::set(std::string_view Key, JsonValue V) {
  K = Kind::Object;
  for (auto &M : Members) {
    if (M.first == Key) {
      M.second = std::move(V);
      return;
    }
  }
  Members.emplace_back(std::string(Key), std::move(V));
}

const JsonValue *JsonValue::get(std::string_view Key) const {
  if (!isObject())
    return nullptr;
  for (const auto &M : Members)
    if (M.first == Key)
      return &M.second;
  return nullptr;
}

std::string kremlin::formatJsonNumber(double V) {
  if (!std::isfinite(V))
    return "null"; // JSON has no inf/nan; emit null rather than garbage.
  // Integers (the common case for counters) print exactly, without
  // exponent noise, up to the 2^53 precision limit.
  if (V == std::floor(V) && std::fabs(V) < 9.007199254740992e15)
    return formatString("%.0f", V);
  // Shortest form that round-trips: try increasing precision.
  for (int Prec = 15; Prec <= 17; ++Prec) {
    std::string S = formatString("%.*g", Prec, V);
    if (std::strtod(S.c_str(), nullptr) == V)
      return S;
  }
  return formatString("%.17g", V);
}

static void appendEscaped(std::string &Out, const std::string &S) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += formatString("\\u%04x", C);
      else
        Out += C;
    }
  }
  Out += '"';
}

static void serializeInto(const JsonValue &V, std::string &Out,
                          unsigned Depth) {
  const std::string Pad(2 * (Depth + 1), ' ');
  const std::string ClosePad(2 * Depth, ' ');
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    break;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    break;
  case JsonValue::Kind::Number:
    Out += formatJsonNumber(V.asNumber());
    break;
  case JsonValue::Kind::String:
    appendEscaped(Out, V.asString());
    break;
  case JsonValue::Kind::Array: {
    if (V.size() == 0) {
      Out += "[]";
      break;
    }
    Out += "[\n";
    for (size_t I = 0; I < V.size(); ++I) {
      Out += Pad;
      serializeInto(V.at(I), Out, Depth + 1);
      if (I + 1 < V.size())
        Out += ',';
      Out += '\n';
    }
    Out += ClosePad + "]";
    break;
  }
  case JsonValue::Kind::Object: {
    if (V.members().empty()) {
      Out += "{}";
      break;
    }
    Out += "{\n";
    size_t I = 0;
    for (const auto &M : V.members()) {
      Out += Pad;
      appendEscaped(Out, M.first);
      Out += ": ";
      serializeInto(M.second, Out, Depth + 1);
      if (++I < V.members().size())
        Out += ',';
      Out += '\n';
    }
    Out += ClosePad + "}";
    break;
  }
  }
}

std::string JsonValue::serialize(unsigned Indent) const {
  std::string Out;
  serializeInto(*this, Out, Indent);
  return Out;
}

namespace {

/// Recursive-descent JSON parser over a string_view.
class Parser {
public:
  Parser(std::string_view Text) : Text(Text) {}

  bool parseDocument(JsonValue &Out, std::string *Error) {
    bool Ok = parseValue(Out, 0);
    if (Ok) {
      skipWhitespace();
      if (Pos != Text.size()) {
        Ok = false;
        Err = "trailing characters after document";
      }
    }
    if (!Ok && Error)
      *Error = formatString("json: at offset %zu: %s", Pos, Err.c_str());
    return Ok;
  }

private:
  static constexpr unsigned MaxDepth = 64;

  std::string_view Text;
  size_t Pos = 0;
  std::string Err;

  void skipWhitespace() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool fail(const char *Message) {
    Err = Message;
    return false;
  }

  bool consume(char C, const char *Message) {
    if (Pos >= Text.size() || Text[Pos] != C)
      return fail(Message);
    ++Pos;
    return true;
  }

  bool literal(std::string_view Word) {
    if (Text.substr(Pos, Word.size()) != Word)
      return fail("invalid literal");
    Pos += Word.size();
    return true;
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    skipWhitespace();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"': {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue(std::move(S));
      return true;
    }
    case 't':
      Out = JsonValue(true);
      return literal("true");
    case 'f':
      Out = JsonValue(false);
      return literal("false");
    case 'n':
      Out = JsonValue();
      return literal("null");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(JsonValue &Out, unsigned Depth) {
    ++Pos; // '{'
    Out = JsonValue::makeObject();
    skipWhitespace();
    if (Pos < Text.size() && Text[Pos] == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWhitespace();
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWhitespace();
      if (!consume(':', "expected ':' in object"))
        return false;
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.set(Key, std::move(V));
      skipWhitespace();
      if (Pos >= Text.size())
        return fail("unterminated object");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume('}', "expected ',' or '}' in object");
    }
  }

  bool parseArray(JsonValue &Out, unsigned Depth) {
    ++Pos; // '['
    Out = JsonValue::makeArray();
    skipWhitespace();
    if (Pos < Text.size() && Text[Pos] == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      JsonValue V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.push(std::move(V));
      skipWhitespace();
      if (Pos >= Text.size())
        return fail("unterminated array");
      if (Text[Pos] == ',') {
        ++Pos;
        continue;
      }
      return consume(']', "expected ',' or ']' in array");
    }
  }

  bool parseString(std::string &Out) {
    if (!consume('"', "expected string"))
      return false;
    Out.clear();
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out += C;
        continue;
      }
      if (Pos >= Text.size())
        return fail("unterminated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out += E;
        break;
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      case 'b':
        Out += '\b';
        break;
      case 'f':
        Out += '\f';
        break;
      case 'u': {
        unsigned Code = 0;
        if (!parseHex4(Code))
          return false;
        appendUtf8(Out, Code);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parseHex4(unsigned &Out) {
    if (Pos + 4 > Text.size())
      return fail("truncated \\u escape");
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      char C = Text[Pos++];
      Out <<= 4;
      if (C >= '0' && C <= '9')
        Out |= static_cast<unsigned>(C - '0');
      else if (C >= 'a' && C <= 'f')
        Out |= static_cast<unsigned>(C - 'a' + 10);
      else if (C >= 'A' && C <= 'F')
        Out |= static_cast<unsigned>(C - 'A' + 10);
      else
        return fail("invalid \\u escape digit");
    }
    return true;
  }

  static void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool parseNumber(JsonValue &Out) {
    size_t Start = Pos;
    if (Pos < Text.size() && Text[Pos] == '-')
      ++Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E' ||
            Text[Pos] == '+' || Text[Pos] == '-'))
      ++Pos;
    if (Pos == Start)
      return fail("expected value");
    std::string Lexeme(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    double V = std::strtod(Lexeme.c_str(), &End);
    if (End != Lexeme.c_str() + Lexeme.size())
      return fail("malformed number");
    Out = JsonValue(V);
    return true;
  }
};

} // namespace

bool JsonValue::parse(std::string_view Text, JsonValue &Out,
                      std::string *Error) {
  return Parser(Text).parseDocument(Out, Error);
}

bool kremlin::readFileToString(const std::string &Path, std::string &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  std::ostringstream SS;
  SS << In.rdbuf();
  Out = SS.str();
  return true;
}

bool kremlin::writeStringToFile(const std::string &Path,
                                std::string_view Text) {
  std::ofstream OutFile(Path, std::ios::binary | std::ios::trunc);
  if (!OutFile)
    return false;
  OutFile.write(Text.data(), static_cast<std::streamsize>(Text.size()));
  return static_cast<bool>(OutFile);
}
