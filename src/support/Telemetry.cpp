//===- support/Telemetry.cpp ----------------------------------------------===//

#include "support/Telemetry.h"

#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include "support/Prng.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <thread>

using namespace kremlin;
using namespace kremlin::telemetry;

// --- Histogram --------------------------------------------------------------

uint64_t Histogram::quantile(double P) const {
  uint64_t Total = count();
  if (Total == 0)
    return 0;
  if (P < 0.0)
    P = 0.0;
  if (P > 1.0)
    P = 1.0;
  // Rank of the requested quantile, 1-based.
  uint64_t Rank = static_cast<uint64_t>(P * static_cast<double>(Total - 1)) + 1;
  uint64_t Seen = 0;
  for (unsigned I = 0; I < NumBuckets; ++I) {
    Seen += bucket(I);
    if (Seen >= Rank)
      return bucketUpperBound(I);
  }
  return max();
}

void Histogram::reset() {
  Count.store(0, std::memory_order_relaxed);
  Sum.store(0, std::memory_order_relaxed);
  Min.store(UINT64_MAX, std::memory_order_relaxed);
  Max.store(0, std::memory_order_relaxed);
  for (auto &B : Buckets)
    B.store(0, std::memory_order_relaxed);
}

// --- Registry ---------------------------------------------------------------

Registry &Registry::global() {
  static Registry R;
  return R;
}

Counter &Registry::counter(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Counters.find(Name);
  if (It == Counters.end())
    It = Counters.emplace(std::string(Name), std::make_unique<Counter>())
             .first;
  return *It->second;
}

Gauge &Registry::gauge(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Gauges.find(Name);
  if (It == Gauges.end())
    It = Gauges.emplace(std::string(Name), std::make_unique<Gauge>()).first;
  return *It->second;
}

Histogram &Registry::histogram(std::string_view Name) {
  std::lock_guard<std::mutex> Lock(Mutex);
  auto It = Histograms.find(Name);
  if (It == Histograms.end())
    It = Histograms.emplace(std::string(Name), std::make_unique<Histogram>())
             .first;
  return *It->second;
}

std::vector<std::pair<std::string, double>> Registry::snapshot() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<std::pair<std::string, double>> Out;
  Out.reserve(Counters.size() + Gauges.size() + Histograms.size() * 6);
  for (const auto &[Name, C] : Counters)
    Out.emplace_back(Name, static_cast<double>(C->value()));
  for (const auto &[Name, G] : Gauges)
    Out.emplace_back(Name, G->value());
  for (const auto &[Name, H] : Histograms) {
    // An empty histogram has no smallest/largest/median sample; NaN (JSON
    // null, table "n/a") says so honestly where 0 would read as data.
    const bool Empty = H->count() == 0;
    const double NA = std::numeric_limits<double>::quiet_NaN();
    Out.emplace_back(Name + ".count", static_cast<double>(H->count()));
    Out.emplace_back(Name + ".sum", static_cast<double>(H->sum()));
    Out.emplace_back(Name + ".min",
                     Empty ? NA : static_cast<double>(H->min()));
    Out.emplace_back(Name + ".max",
                     Empty ? NA : static_cast<double>(H->max()));
    Out.emplace_back(Name + ".p50",
                     Empty ? NA : static_cast<double>(H->quantile(0.5)));
    Out.emplace_back(Name + ".p99",
                     Empty ? NA : static_cast<double>(H->quantile(0.99)));
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

JsonValue Registry::toJson() const {
  JsonValue Doc = JsonValue::makeObject();
  Doc.set("schema", JsonValue(1));
  Doc.set("kind", JsonValue("kremlin-metrics"));
  JsonValue Map = JsonValue::makeObject();
  for (const auto &[Name, Value] : snapshot())
    Map.set(Name, JsonValue(Value));
  Doc.set("metrics", std::move(Map));
  return Doc;
}

std::string Registry::renderTable() const {
  TablePrinter Table;
  Table.setHeader({"Metric", "Value"});
  for (const auto &[Name, Value] : snapshot()) {
    if (std::isnan(Value)) {
      Table.addRow({Name, "n/a"}); // Empty-histogram quantile/extremum.
      continue;
    }
    // Counters and counts are integral; print them without decimals.
    double Rounded = static_cast<double>(static_cast<uint64_t>(Value));
    Table.addRow({Name, Value == Rounded ? formatString("%.0f", Value)
                                         : formatString("%.3f", Value)});
  }
  return Table.render();
}

namespace {

/// serve.queue_wait_us -> kremlin_serve_queue_wait_us.
std::string prometheusName(std::string_view Name) {
  std::string Out = "kremlin_";
  for (char C : Name) {
    bool Ok = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') ||
              (C >= '0' && C <= '9') || C == '_';
    Out += Ok ? C : '_';
  }
  return Out;
}

std::string prometheusNumber(double V) {
  if (std::isnan(V))
    return "NaN";
  double Rounded = static_cast<double>(static_cast<int64_t>(V));
  return V == Rounded ? formatString("%.0f", V) : formatString("%.10g", V);
}

void prometheusHeader(std::string &Out, const std::string &PName,
                      const std::string &Name, const char *Type) {
  Out += "# HELP " + PName + " kremlin metric " + Name + "\n";
  Out += "# TYPE " + PName + " " + Type + "\n";
}

} // namespace

std::string Registry::renderPrometheus() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::string Out;
  for (const auto &[Name, C] : Counters) {
    std::string PName = prometheusName(Name);
    prometheusHeader(Out, PName, Name, "counter");
    Out += PName + " " + formatString("%llu",
                                      static_cast<unsigned long long>(
                                          C->value())) + "\n";
  }
  for (const auto &[Name, G] : Gauges) {
    std::string PName = prometheusName(Name);
    prometheusHeader(Out, PName, Name, "gauge");
    Out += PName + " " + prometheusNumber(G->value()) + "\n";
  }
  for (const auto &[Name, H] : Histograms) {
    std::string PName = prometheusName(Name);
    prometheusHeader(Out, PName, Name, "histogram");
    // Cumulative buckets up to the one holding the max sample; the log2
    // upper bounds are inclusive, which matches Prometheus `le` exactly.
    // Bucket 64's bound is not finitely representable — +Inf covers it.
    uint64_t Cumulative = 0;
    if (H->count() > 0) {
      unsigned Last = std::min(Histogram::bucketFor(H->max()), 63u);
      for (unsigned I = 0; I <= Last; ++I) {
        Cumulative += H->bucket(I);
        Out += PName + formatString(
                           "_bucket{le=\"%llu\"} %llu\n",
                           static_cast<unsigned long long>(
                               Histogram::bucketUpperBound(I)),
                           static_cast<unsigned long long>(Cumulative));
      }
    }
    Out += PName + formatString("_bucket{le=\"+Inf\"} %llu\n",
                                static_cast<unsigned long long>(H->count()));
    Out += PName + formatString("_sum %llu\n",
                                static_cast<unsigned long long>(H->sum()));
    Out += PName + formatString("_count %llu\n",
                                static_cast<unsigned long long>(H->count()));
  }
  return Out;
}

void Registry::resetValues() {
  std::lock_guard<std::mutex> Lock(Mutex);
  for (auto &[Name, C] : Counters)
    C->reset();
  for (auto &[Name, G] : Gauges)
    G->reset();
  for (auto &[Name, H] : Histograms)
    H->reset();
}

// --- Trace ring and sinks ---------------------------------------------------

namespace {

/// One lock-sharded ring segment. Events is a circular window: Start
/// indexes the oldest event once the shard has wrapped (sink-less mode);
/// with a sink installed the shard never wraps — filling it hands the
/// whole chunk to the sink instead.
struct TraceShard {
  std::mutex Mutex;
  std::vector<TraceEvent> Events;
  size_t Start = 0;

  /// Restores chronological order after wrapping; call under Mutex.
  void normalize() {
    if (Start != 0) {
      std::rotate(Events.begin(),
                  Events.begin() + static_cast<ptrdiff_t>(Start),
                  Events.end());
      Start = 0;
    }
  }
};

TraceShard *shards() {
  static TraceShard Shards[NumTraceShards];
  return Shards;
}

TraceShard &shardForThisThread() {
  // Hash of the thread id, cached per thread.
  thread_local unsigned Shard =
      static_cast<unsigned>(std::hash<std::thread::id>()(
                                std::this_thread::get_id()) %
                            NumTraceShards);
  return shards()[Shard];
}

std::atomic<bool> TraceOn{false};

/// Per-shard ring capacity, derived from TraceSinkConfig::RingEvents.
std::atomic<size_t> ShardCapacity{TraceSinkConfig().RingEvents /
                                  NumTraceShards};

size_t perShardCapacity(size_t TotalEvents) {
  if (TotalEvents == 0)
    TotalEvents = TraceSinkConfig().RingEvents;
  size_t Per = TotalEvents / NumTraceShards;
  return Per < 4 ? 4 : Per;
}

/// The installed sink. SinkPresent mirrors (Sink != nullptr) so the
/// record path can branch without taking the sink mutex.
struct SinkState {
  std::mutex Mutex;
  std::unique_ptr<TraceSink> Sink;
};

SinkState &sinkState() {
  static SinkState S;
  return S;
}

std::atomic<bool> SinkPresent{false};

/// Events observed (recorded or dropped); the disabled-path cost.
Counter &eventCounter() {
  static Counter &C = Registry::global().counter("telemetry.events");
  return C;
}

/// Streaming-path accounting. recorded counts ring insertions, dropped
/// counts ring overwrites (sink-less mode), flushes/flushed_events count
/// chunks handed to the sink.
Counter &recordedCounter() {
  static Counter &C = Registry::global().counter("telemetry.trace.recorded");
  return C;
}
Counter &droppedCounter() {
  static Counter &C = Registry::global().counter("telemetry.trace.dropped");
  return C;
}
Counter &flushCounter() {
  static Counter &C = Registry::global().counter("telemetry.trace.flushes");
  return C;
}
Counter &flushedEventsCounter() {
  static Counter &C =
      Registry::global().counter("telemetry.trace.flushed_events");
  return C;
}

/// Compacted thread id: small integers in first-seen order, stable for
/// the process lifetime.
uint32_t compactTid() {
  static std::mutex M;
  static std::map<std::thread::id, uint32_t> Ids;
  thread_local uint32_t Cached = [] {
    std::lock_guard<std::mutex> Lock(M);
    auto [It, Inserted] = Ids.emplace(std::this_thread::get_id(),
                                      static_cast<uint32_t>(Ids.size() + 1));
    (void)Inserted;
    return It->second;
  }();
  return Cached;
}

/// Hands one chunk to the installed sink (if any); events of chunks that
/// race with sink removal are dropped with accounting, never lost silently.
void writeChunkToSink(std::vector<TraceEvent> Chunk) {
  if (Chunk.empty())
    return;
  size_t N = Chunk.size();
  SinkState &S = sinkState();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  if (!S.Sink) {
    droppedCounter().add(N);
    return;
  }
  S.Sink->writeBatch(std::move(Chunk));
  flushCounter().add();
  flushedEventsCounter().add(N);
}

void recordEvent(TraceEvent E) {
  E.Tid = compactTid();
  TraceShard &Shard = shardForThisThread();
  std::vector<TraceEvent> Chunk;
  {
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    size_t Cap = ShardCapacity.load(std::memory_order_relaxed);
    if (Shard.Events.size() >= Cap) {
      if (SinkPresent.load(std::memory_order_relaxed)) {
        // Chunk boundary: move the full shard out (under the shard lock)
        // and stream it after release, so sink I/O never blocks siblings.
        Shard.normalize();
        Chunk = std::move(Shard.Events);
        Shard.Events = {};
        Shard.Events.reserve(Cap);
        Shard.Events.push_back(std::move(E));
      } else {
        // Bounded window: overwrite the oldest event in place.
        Shard.Events[Shard.Start] = std::move(E);
        Shard.Start = (Shard.Start + 1) % Shard.Events.size();
        droppedCounter().add();
      }
    } else {
      Shard.Events.push_back(std::move(E));
    }
    recordedCounter().add();
  }
  writeChunkToSink(std::move(Chunk));
}

/// Drains every shard into a single chronological vector.
std::vector<TraceEvent> drainShards() {
  std::vector<TraceEvent> Out;
  for (unsigned I = 0; I < NumTraceShards; ++I) {
    TraceShard &Shard = shards()[I];
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    Shard.normalize();
    Out.insert(Out.end(), std::make_move_iterator(Shard.Events.begin()),
               std::make_move_iterator(Shard.Events.end()));
    Shard.Events.clear();
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const TraceEvent &A, const TraceEvent &B) {
                     return A.TimeUs < B.TimeUs;
                   });
  return Out;
}

std::chrono::steady_clock::time_point processStart() {
  static const std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();
  return Start;
}

} // namespace

bool kremlin::telemetry::traceEnabled() {
  return TraceOn.load(std::memory_order_relaxed);
}

void kremlin::telemetry::setTraceEnabled(bool Enabled) {
  processStart(); // Pin the epoch before the first span.
  TraceOn.store(Enabled, std::memory_order_relaxed);
}

// --- Sinks ------------------------------------------------------------------

void InMemoryTraceSink::writeBatch(std::vector<TraceEvent> Batch) {
  std::lock_guard<std::mutex> Lock(Mutex);
  Events.insert(Events.end(), std::make_move_iterator(Batch.begin()),
                std::make_move_iterator(Batch.end()));
}

std::vector<TraceEvent> InMemoryTraceSink::take() {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<TraceEvent> Out = std::move(Events);
  Events = {};
  return Out;
}

Expected<std::unique_ptr<FileTraceSink>>
FileTraceSink::open(std::string Path, const TraceSinkConfig &Cfg) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return Status::error(ErrorCode::IoError,
                         "cannot open trace output for writing")
        .withStage("trace-sink")
        .withInput(Path);
  std::unique_ptr<FileTraceSink> Sink(new FileTraceSink());
  Sink->Path = std::move(Path);
  Sink->File = F;
  Sink->FlushBytes = (Cfg.FlushKb ? Cfg.FlushKb : 1) * 1024;
  Sink->Buf = "{\n  \"displayTimeUnit\": \"ms\",\n  \"traceEvents\": [";
  return Sink;
}

FileTraceSink::~FileTraceSink() { close(); }

void FileTraceSink::writeBatch(std::vector<TraceEvent> Batch) {
  if (Closed)
    return;
  for (const TraceEvent &E : Batch) {
    Buf += WroteEvent ? ",\n    " : "\n    ";
    WroteEvent = true;
    Buf += traceEventToJson(E).serialize(2);
  }
  flushBuffer(/*Force=*/false);
}

void FileTraceSink::flushBuffer(bool Force) {
  if (!File || Buf.empty() || (!Force && Buf.size() < FlushBytes))
    return;
  std::FILE *F = static_cast<std::FILE *>(File);
  size_t Written = std::fwrite(Buf.data(), 1, Buf.size(), F);
  std::fflush(F);
  Registry::global().counter("telemetry.trace.file_flushes").add();
  Registry::global().counter("telemetry.trace.file_bytes").add(Written);
  if (Written != Buf.size())
    CloseStatus = Status::error(ErrorCode::IoError, "short write")
                      .withStage("trace-sink")
                      .withInput(Path);
  Buf.clear();
}

Status FileTraceSink::close() {
  if (Closed)
    return CloseStatus;
  Closed = true;
  Buf += WroteEvent ? "\n  ]\n}\n" : "]\n}\n";
  flushBuffer(/*Force=*/true);
  if (File) {
    if (std::fclose(static_cast<std::FILE *>(File)) != 0 &&
        CloseStatus.ok())
      CloseStatus = Status::error(ErrorCode::IoError, "close failed")
                        .withStage("trace-sink")
                        .withInput(Path);
    File = nullptr;
  }
  return CloseStatus;
}

Status kremlin::telemetry::setTraceSink(std::unique_ptr<TraceSink> Sink,
                                        TraceSinkConfig Cfg) {
  Status Prev = closeTraceSink();
  if (!Sink)
    return Prev;
  setTraceRingEvents(Cfg.RingEvents);
  {
    SinkState &S = sinkState();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    S.Sink = std::move(Sink);
  }
  SinkPresent.store(true, std::memory_order_relaxed);
  setTraceEnabled(true);
  return Prev;
}

TraceSink *kremlin::telemetry::traceSink() {
  SinkState &S = sinkState();
  std::lock_guard<std::mutex> Lock(S.Mutex);
  return S.Sink.get();
}

void kremlin::telemetry::flushTraceRings() {
  if (!SinkPresent.load(std::memory_order_relaxed))
    return;
  writeChunkToSink(drainShards());
}

Status kremlin::telemetry::closeTraceSink() {
  std::unique_ptr<TraceSink> Sink;
  {
    SinkState &S = sinkState();
    std::lock_guard<std::mutex> Lock(S.Mutex);
    Sink = std::move(S.Sink);
  }
  if (!Sink) {
    SinkPresent.store(false, std::memory_order_relaxed);
    return Status();
  }
  // Residual ring contents belong to this sink; stream them before the
  // tail is written. SinkPresent stays set so concurrent recorders keep
  // chunking (their chunks land in the drop accounting once Sink is gone).
  std::vector<TraceEvent> Residue = drainShards();
  SinkPresent.store(false, std::memory_order_relaxed);
  setTraceEnabled(false);
  if (!Residue.empty()) {
    size_t N = Residue.size();
    Sink->writeBatch(std::move(Residue));
    flushCounter().add();
    flushedEventsCounter().add(N);
  }
  return Sink->close();
}

void kremlin::telemetry::setTraceRingEvents(size_t TotalEvents) {
  size_t Cap = perShardCapacity(TotalEvents);
  ShardCapacity.store(Cap, std::memory_order_relaxed);
  // Trim shards already above the new capacity, oldest first.
  for (unsigned I = 0; I < NumTraceShards; ++I) {
    TraceShard &Shard = shards()[I];
    std::lock_guard<std::mutex> Lock(Shard.Mutex);
    if (Shard.Events.size() <= Cap)
      continue;
    Shard.normalize();
    size_t Excess = Shard.Events.size() - Cap;
    Shard.Events.erase(Shard.Events.begin(),
                       Shard.Events.begin() + static_cast<ptrdiff_t>(Excess));
    droppedCounter().add(Excess);
  }
}

uint64_t kremlin::telemetry::nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - processStart())
          .count());
}

void kremlin::telemetry::instantEvent(
    std::string Name, std::string Category,
    std::vector<std::pair<std::string, std::string>> Args) {
  eventCounter().add();
  if (!traceEnabled())
    return;
  TraceEvent E;
  E.K = TraceEvent::Kind::Instant;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.TimeUs = nowUs();
  E.Args = std::move(Args);
  recordEvent(std::move(E));
}

void kremlin::telemetry::counterSample(std::string Name, double Value) {
  eventCounter().add();
  if (!traceEnabled())
    return;
  TraceEvent E;
  E.K = TraceEvent::Kind::CounterSample;
  E.Name = std::move(Name);
  E.Category = "metrics";
  E.TimeUs = nowUs();
  E.Value = Value;
  recordEvent(std::move(E));
}

void kremlin::telemetry::recordSpanAt(
    std::string Name, std::string Category, uint64_t StartUs, uint64_t DurUs,
    std::vector<std::pair<std::string, std::string>> Args) {
  eventCounter().add();
  if (!traceEnabled())
    return;
  if (const TraceContext *Ctx = currentTraceContext())
    Args.emplace_back("trace_id", Ctx->TraceId);
  TraceEvent E;
  E.K = TraceEvent::Kind::Span;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.TimeUs = StartUs;
  E.DurUs = DurUs;
  E.Args = std::move(Args);
  recordEvent(std::move(E));
}

std::vector<TraceEvent> kremlin::telemetry::takeTrace() { return drainShards(); }

JsonValue kremlin::telemetry::traceEventToJson(const TraceEvent &E) {
  JsonValue Ev = JsonValue::makeObject();
  Ev.set("name", JsonValue(E.Name));
  Ev.set("cat", JsonValue(E.Category));
  Ev.set("pid", JsonValue(1));
  Ev.set("tid", JsonValue(E.Tid));
  Ev.set("ts", JsonValue(static_cast<double>(E.TimeUs)));
  switch (E.K) {
  case TraceEvent::Kind::Span:
    Ev.set("ph", JsonValue("X"));
    Ev.set("dur", JsonValue(static_cast<double>(E.DurUs)));
    break;
  case TraceEvent::Kind::Instant:
    Ev.set("ph", JsonValue("i"));
    Ev.set("s", JsonValue("t"));
    break;
  case TraceEvent::Kind::CounterSample:
    Ev.set("ph", JsonValue("C"));
    break;
  }
  JsonValue Args = JsonValue::makeObject();
  if (E.K == TraceEvent::Kind::CounterSample)
    Args.set("value", JsonValue(E.Value));
  for (const auto &[Key, Value] : E.Args)
    Args.set(Key, JsonValue(Value));
  if (Args.size() > 0)
    Ev.set("args", std::move(Args));
  return Ev;
}

std::string
kremlin::telemetry::traceToChromeJson(const std::vector<TraceEvent> &Events) {
  JsonValue Doc = JsonValue::makeObject();
  JsonValue Arr = JsonValue::makeArray();
  for (const TraceEvent &E : Events)
    Arr.push(traceEventToJson(E));
  Doc.set("traceEvents", std::move(Arr));
  Doc.set("displayTimeUnit", JsonValue("ms"));
  return Doc.serialize() + "\n";
}

std::string kremlin::telemetry::takeTraceAsChromeJson() {
  return traceToChromeJson(takeTrace());
}

// --- Trace-context propagation ----------------------------------------------

namespace {

/// Unique-per-process id bits: a SplitMix64 stream seeded once from the
/// clock and some address entropy. Correlation ids, not secrets.
uint64_t randomIdBits() {
  static std::mutex M;
  static Prng Rng([] {
    uint64_t Seed = static_cast<uint64_t>(
        std::chrono::system_clock::now().time_since_epoch().count());
    Seed ^= static_cast<uint64_t>(
        std::hash<std::thread::id>()(std::this_thread::get_id()));
    Seed ^= reinterpret_cast<uintptr_t>(&Rng);
    return Seed;
  }());
  std::lock_guard<std::mutex> Lock(M);
  return Rng.next();
}

bool isLowerHex(std::string_view S) {
  for (char C : S)
    if (!((C >= '0' && C <= '9') || (C >= 'a' && C <= 'f')))
      return false;
  return true;
}

bool isAllZero(std::string_view S) {
  return S.find_first_not_of('0') == std::string_view::npos;
}

thread_local const TraceContext *CurrentCtx = nullptr;

} // namespace

TraceContext kremlin::telemetry::mintTraceContext() {
  TraceContext Ctx;
  Ctx.TraceId = formatString(
      "%016llx%016llx", static_cast<unsigned long long>(randomIdBits()),
      static_cast<unsigned long long>(randomIdBits()));
  if (isAllZero(Ctx.TraceId))
    Ctx.TraceId.back() = '1'; // The all-zero id is reserved ("no trace").
  Ctx.SpanId = mintSpanId();
  return Ctx;
}

std::string kremlin::telemetry::mintSpanId() {
  std::string Id = formatString(
      "%016llx", static_cast<unsigned long long>(randomIdBits()));
  if (isAllZero(Id))
    Id.back() = '1';
  return Id;
}

std::string kremlin::telemetry::formatTraceparent(const TraceContext &Ctx) {
  return "00-" + Ctx.TraceId + "-" + Ctx.SpanId + "-01";
}

bool kremlin::telemetry::parseTraceparent(std::string_view Header,
                                          TraceContext &Out) {
  // 00-{32 hex}-{16 hex}-{2 hex}: 55 chars exactly. Anything longer
  // (oversized), shorter (truncated), or differently cased is rejected.
  if (Header.size() != 55)
    return false;
  if (Header.substr(0, 3) != "00-" || Header[35] != '-' || Header[52] != '-')
    return false;
  std::string_view TraceId = Header.substr(3, 32);
  std::string_view SpanId = Header.substr(36, 16);
  std::string_view Flags = Header.substr(53, 2);
  if (!isLowerHex(TraceId) || !isLowerHex(SpanId) || !isLowerHex(Flags))
    return false;
  if (isAllZero(TraceId) || isAllZero(SpanId))
    return false;
  Out.TraceId = std::string(TraceId);
  Out.SpanId = std::string(SpanId);
  return true;
}

ScopedTraceContext::ScopedTraceContext(TraceContext Ctx)
    : Ctx(std::move(Ctx)), Prev(CurrentCtx) {
  CurrentCtx = this->Ctx.valid() ? &this->Ctx : Prev;
}

ScopedTraceContext::~ScopedTraceContext() { CurrentCtx = Prev; }

const TraceContext *kremlin::telemetry::currentTraceContext() {
  return CurrentCtx;
}

// --- Span -------------------------------------------------------------------

Span::Span(std::string_view Name, std::string_view Category) {
  eventCounter().add(); // The whole disabled-path cost.
  if (!traceEnabled())
    return;
  this->Name = Name;
  this->Category = Category;
  if (const TraceContext *Ctx = currentTraceContext())
    Args.emplace_back("trace_id", Ctx->TraceId);
  Recording = true;
  StartUs = nowUs();
}

void Span::arg(std::string_view Key, std::string Value) {
  if (Recording)
    Args.emplace_back(std::string(Key), std::move(Value));
}

void Span::end() {
  if (!Recording)
    return;
  Recording = false;
  TraceEvent E;
  E.K = TraceEvent::Kind::Span;
  E.Name = std::move(Name);
  E.Category = std::move(Category);
  E.TimeUs = StartUs;
  E.DurUs = nowUs() - StartUs;
  E.Args = std::move(Args);
  recordEvent(std::move(E));
}

// --- Logger -----------------------------------------------------------------

namespace {

LogLevel parseLogLevelEnv() {
  const char *Env = std::getenv("KREMLIN_LOG");
  if (!Env || !*Env)
    return LogLevel::Warn;
  if (std::strcmp(Env, "error") == 0 || std::strcmp(Env, "0") == 0)
    return LogLevel::Error;
  if (std::strcmp(Env, "warn") == 0 || std::strcmp(Env, "1") == 0)
    return LogLevel::Warn;
  if (std::strcmp(Env, "info") == 0 || std::strcmp(Env, "2") == 0)
    return LogLevel::Info;
  if (std::strcmp(Env, "debug") == 0 || std::strcmp(Env, "3") == 0)
    return LogLevel::Debug;
  return LogLevel::Warn;
}

std::atomic<unsigned char> &logLevelStorage() {
  static std::atomic<unsigned char> Level{
      static_cast<unsigned char>(parseLogLevelEnv())};
  return Level;
}

} // namespace

const char *kremlin::telemetry::logLevelName(LogLevel L) {
  switch (L) {
  case LogLevel::Error:
    return "error";
  case LogLevel::Warn:
    return "warn";
  case LogLevel::Info:
    return "info";
  case LogLevel::Debug:
    return "debug";
  }
  return "?";
}

LogLevel kremlin::telemetry::logLevel() {
  return static_cast<LogLevel>(
      logLevelStorage().load(std::memory_order_relaxed));
}

void kremlin::telemetry::setLogLevel(LogLevel L) {
  logLevelStorage().store(static_cast<unsigned char>(L),
                          std::memory_order_relaxed);
}

void kremlin::telemetry::logMessage(LogLevel L, const char *Component,
                                    std::string_view Msg) {
  static Counter &Suppressed =
      Registry::global().counter("log.suppressed");
  if (!logEnabled(L)) {
    Suppressed.add();
    return;
  }
  static Counter *Emitted[4] = {
      &Registry::global().counter("log.errors"),
      &Registry::global().counter("log.warnings"),
      &Registry::global().counter("log.infos"),
      &Registry::global().counter("log.debugs"),
  };
  Emitted[static_cast<unsigned>(L)]->add();
  // One mutex keeps concurrent lines from interleaving.
  static std::mutex OutMutex;
  std::lock_guard<std::mutex> Lock(OutMutex);
  std::fprintf(stderr, "kremlin[%s] %s: %.*s\n", logLevelName(L), Component,
               static_cast<int>(Msg.size()), Msg.data());
}

void kremlin::telemetry::logf(LogLevel L, const char *Component,
                              const char *Fmt, ...) {
  if (!logEnabled(L)) {
    logMessage(L, Component, ""); // Counts as suppressed, emits nothing.
    return;
  }
  va_list Args;
  va_start(Args, Fmt);
  char Buf[1024];
  std::vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  logMessage(L, Component, Buf);
}
