//===- support/AccessLog.h - Bounded JSON-lines access log ------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `kremlin serve --access-log=` sink: one JSON object per request,
/// one line per object, written through the same bounded-buffer idiom as
/// the telemetry FileTraceSink so a slow disk never blocks a handler for
/// more than one amortized fwrite. append() serializes the entry into an
/// in-memory buffer under a short mutex; the buffer flushes to disk every
/// FlushBytes, and close() (or destruction) flushes the tail. Write
/// failures are counted (serve.access_log.write_errors) and reported by
/// close(), never surfaced to the request path — losing a log line must
/// not fail an upload.
///
/// Line schema (all fields always present):
///   {"ts_us": N, "trace_id": "...", "method": "GET", "path": "/ingest",
///    "status": 200, "bytes_in": N, "bytes_out": N, "queue_wait_ms": F,
///    "handler_ms": F, "dedup": "none|merged|deduplicated"}
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_SUPPORT_ACCESSLOG_H
#define KREMLIN_SUPPORT_ACCESSLOG_H

#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

namespace kremlin {

/// One request's access-log record.
struct AccessLogEntry {
  std::string TraceId;
  std::string Method;
  std::string Path;
  int Status = 0;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t QueueWaitUs = 0;
  uint64_t HandlerUs = 0;
  /// Idempotency-key outcome: "none" (no key sent), "merged" (key
  /// recorded, profile merged), or "deduplicated" (replay acknowledged).
  std::string Dedup = "none";
};

/// Thread-safe buffered JSON-lines writer.
class AccessLog {
public:
  /// Opens \p Path for writing (truncating). IoError when it cannot be
  /// created.
  static Expected<std::unique_ptr<AccessLog>>
  open(std::string Path, size_t FlushBytes = 32 * 1024);

  ~AccessLog();
  AccessLog(const AccessLog &) = delete;
  AccessLog &operator=(const AccessLog &) = delete;

  /// Serializes \p E as one JSON line into the buffer; flushes to disk
  /// when the buffer exceeds the flush threshold. Never throws, never
  /// blocks beyond the buffer mutex + one amortized fwrite.
  void append(const AccessLogEntry &E);

  /// Flushes the tail and closes the file. Idempotent; returns the first
  /// write error seen, if any.
  Status close();

  const std::string &path() const { return Path; }

private:
  AccessLog() = default;

  /// Flushes under the caller's lock when forced or over threshold.
  void flushLocked(bool Force);

  std::mutex Mutex;
  std::string Path;
  void *File = nullptr; ///< std::FILE*, opaque to spare the include.
  std::string Buf;
  size_t FlushBytes = 32 * 1024;
  bool Closed = false;
  Status CloseStatus;
};

} // namespace kremlin

#endif // KREMLIN_SUPPORT_ACCESSLOG_H
