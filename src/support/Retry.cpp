//===- support/Retry.cpp --------------------------------------------------===//

#include "support/Retry.h"

#include "support/Prng.h"

#include <algorithm>

using namespace kremlin;

unsigned Backoff::delayMs(unsigned Retry) const {
  if (Retry == 0)
    return 0;
  uint64_t Full = Policy.BaseDelayMs;
  for (unsigned I = 1; I < Retry && Full < Policy.MaxDelayMs; ++I)
    Full *= 2;
  Full = std::min<uint64_t>(Full, Policy.MaxDelayMs);

  double Jitter = std::clamp(Policy.JitterFrac, 0.0, 1.0);
  if (Jitter == 0.0)
    return static_cast<unsigned>(Full);
  // One PRNG per (seed, retry) keeps the schedule a pure function of the
  // policy — the same property the fault-injection draws rely on.
  Prng R(Policy.Seed ^ (Retry * 0x9e3779b97f4a7c15ULL + 1));
  double Lo = static_cast<double>(Full) * (1.0 - Jitter);
  double Drawn = Lo + R.nextDouble() * (static_cast<double>(Full) - Lo);
  return static_cast<unsigned>(Drawn);
}

unsigned Backoff::delayMs(unsigned Retry, unsigned RetryAfterSec) const {
  return std::max(delayMs(Retry), RetryAfterSec * 1000u);
}

bool kremlin::isRetryableHttpStatus(int Code) {
  return Code == 408 || Code == 429 || Code >= 500;
}
