//===- rt/KremlinRuntime.h - The KremLib-equivalent runtime -----*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation runtime (the paper's KremLib): hierarchical critical
/// path analysis driven by per-instruction hooks. For every executed
/// operation it propagates availability times at every active nesting
/// level; for every dynamic region it tracks work and critical-path length
/// and emits a summary into a RegionSummarySink on exit.
///
/// Level model: the dynamic region stack index is the nesting level. A
/// configurable depth window [MinLevel, MinLevel + NumLevels) selects which
/// levels carry shadow timestamps (the paper's command-line flag for
/// partitioned HCPA collection); regions outside the window still measure
/// work, and report cp == work (serial assumption), which keeps parent
/// summaries well-formed.
///
/// Stale-data rejection: each level slot has a current region-instance id;
/// every shadow cell (registers, memory, control-dependence entries) is
/// tagged by the instance that wrote it and reads as time 0 under a tag
/// mismatch — the paper's mechanism for safely sharing one slot among all
/// same-depth regions.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_RT_KREMLINRUNTIME_H
#define KREMLIN_RT_KREMLINRUNTIME_H

#include "ir/Instruction.h"
#include "rt/RegionSummary.h"
#include "rt/ShadowMemory.h"
#include "rt/Timestamp.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace kremlin {

/// Hard cap on the depth-window width (stack buffers size to this).
inline constexpr unsigned MaxTrackedLevels = 64;

/// Runtime configuration (the kremlin command-line knobs this reproduction
/// models).
struct KremlinConfig {
  /// First tracked nesting level (0 = the outermost function region).
  unsigned MinLevel = 0;
  /// Number of tracked levels (width of the shadow level arrays).
  unsigned NumLevels = 16;
  /// Shadow-memory page size in words.
  uint64_t SegmentWords = 4096;
  /// Shadow-memory byte budget; 0 = unlimited. Tripping it stops the
  /// profiled execution with a ResourceExhausted error instead of OOM.
  uint64_t MaxShadowBytes = 0;
  /// Region-nesting depth cap; 0 = unlimited. Exceeding it (runaway
  /// recursion in the profiled program) trips ResourceExhausted.
  unsigned MaxRegionDepth = 0;
  LatencyModel Latency;
};

/// Counters exposed for the overhead and compression experiments.
struct RuntimeStats {
  uint64_t DynInstructions = 0;
  uint64_t DynRegionEntries = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  /// Level-slot retags on region entry (a new instance taking over a
  /// shadow level slot — the paper's slot-reuse mechanism in action).
  uint64_t LevelRetags = 0;
};

/// The HCPA runtime. One instance profiles one program execution.
class KremlinRuntime {
public:
  KremlinRuntime(const KremlinConfig &Cfg, RegionSummarySink &Sink);

  // --- Region lifecycle -------------------------------------------------

  void enterRegion(RegionId R);
  void exitRegion(RegionId R);
  unsigned depth() const { return static_cast<unsigned>(Regions.size()); }

  // --- Call frames (shadow register tables, §4.1) -------------------------

  void pushFrame(unsigned NumRegs);
  void popFrame();
  /// Copies an argument's times from the caller frame (one below top) into
  /// a parameter register of the callee frame (top).
  void copyParamFromCaller(ValueId DstParam, ValueId SrcArgInCaller);
  /// Copies the return value's times from the callee frame (top) into a
  /// register of the caller frame (one below top).
  void copyReturnToCaller(ValueId DstInCaller, ValueId SrcInCallee);

  // --- Control dependence (§4.1) ------------------------------------------

  /// Executes a conditional branch in block \p PushBlock: accounts its
  /// work/time and pushes its control dependence. The scope of one dynamic
  /// branch ends when control reaches \p MergeBlock (the immediate
  /// post-dominator) — or returns to \p PushBlock itself, which means a new
  /// dynamic instance of the same branch is about to execute (loop back
  /// edge). Ending the scope at re-entry keeps a counted loop's iterations
  /// from serializing through the loop test once induction chains are
  /// broken, while a data-dependent test still serializes through the
  /// condition value itself.
  void onCondBranch(ValueId CondReg, uint32_t MergeBlock,
                    uint32_t PushBlock);

  /// Pops control-dependence scopes that end at \p Block. Call on every
  /// block entry.
  void popControlDepsAtBlock(uint32_t Block) {
    while (CdMerge.size() > curFrame().CdBase &&
           (CdMerge.back() == Block ||
            CdPushBlock[CdMerge.size() - 1] == Block))
      popControlDep();
  }

  // --- Instruction hooks ----------------------------------------------------

  /// Generic operation: Dst = op(A, B) with latency from \p Op. Pass
  /// NoValue for unused operands/result. \p BreakDepA ignores the data
  /// dependence on A (induction/reduction update rule).
  void onOp(Opcode Op, ValueId Dst, ValueId A, ValueId B, bool BreakDepA);

  void onLoad(ValueId Dst, ValueId AddrReg, uint64_t Addr);
  void onStore(ValueId ValReg, ValueId AddrReg, uint64_t Addr);

  /// Releases shadow segments for a frame's array storage when it dies.
  void releaseShadowRange(uint64_t Addr, uint64_t Words) {
    Memory.releaseRange(Addr, Words);
  }

  const RuntimeStats &stats() const { return Stats; }
  const KremlinConfig &config() const { return Cfg; }
  uint64_t shadowBytes() const { return Memory.allocatedBytes(); }

  /// True once a resource guardrail tripped (shadow byte budget, region
  /// depth cap, or an injected allocation fault). Cheap: two loads. The
  /// interpreter polls this once per basic block and aborts the execution
  /// with status() as the cause.
  bool failed() const { return !Err.ok() || !Memory.status().ok(); }
  /// The guardrail error (ok while healthy). Depth-cap errors take
  /// precedence over shadow-memory errors.
  const Status &status() const { return Err.ok() ? Memory.status() : Err; }
  /// Read access to the shadow memory (telemetry flush, tests).
  const ShadowMemory &shadowMemory() const { return Memory; }

  /// Work accumulated by the innermost active region so far (testing aid).
  uint64_t currentWork() const {
    return Regions.empty() ? 0 : Regions.back().Work;
  }
  /// Running critical-path max of the innermost region (testing aid).
  Time currentMaxTime() const {
    return Regions.empty() ? 0 : Regions.back().MaxTime;
  }

private:
  /// One active dynamic region (a region-stack entry).
  struct ActiveRegion {
    RegionId Static = NoRegion;
    uint64_t Instance = 0;
    Time MaxTime = 0;
    uint64_t Work = 0;
    /// Accumulated (child character, count); sorted at exit.
    std::vector<std::pair<SummaryChar, uint64_t>> Children;
  };

  /// One shadow register frame.
  struct Frame {
    std::vector<ShadowCell> Cells; ///< NumRegs x NumLevels.
    unsigned NumRegs = 0;
    size_t CdBase = 0; ///< Control-dep stack watermark at frame entry.
  };

  KremlinConfig Cfg;
  RegionSummarySink &Sink;
  ShadowMemory Memory;
  RuntimeStats Stats;
  Status Err;

  std::vector<ActiveRegion> Regions;
  std::vector<Frame> Frames;
  /// Current region-instance id per level slot.
  std::vector<uint64_t> CurInstance;
  uint64_t NextInstance = 0;

  /// Control-dependence stack: one merge block + push block + NumLevels
  /// cells per entry.
  std::vector<uint32_t> CdMerge;
  std::vector<uint32_t> CdPushBlock;
  std::vector<ShadowCell> CdCells;

  Frame &curFrame() {
    assert(!Frames.empty() && "no active frame");
    return Frames.back();
  }

  /// Number of level slots active right now: levels [MinLevel, depth)
  /// clipped to the window.
  unsigned activeSlots() const {
    unsigned Depth = depth();
    if (Depth <= Cfg.MinLevel)
      return 0;
    unsigned Active = Depth - Cfg.MinLevel;
    return Active < Cfg.NumLevels ? Active : Cfg.NumLevels;
  }

  Time readRegTime(const Frame &F, ValueId Reg, unsigned Slot) const {
    const ShadowCell &Cell = F.Cells[static_cast<size_t>(Reg) *
                                         Cfg.NumLevels +
                                     Slot];
    return Cell.Tag == CurInstance[Slot] ? Cell.T : 0;
  }

  void writeRegTime(Frame &F, ValueId Reg, unsigned Slot, Time T) {
    ShadowCell &Cell =
        F.Cells[static_cast<size_t>(Reg) * Cfg.NumLevels + Slot];
    Cell.Tag = CurInstance[Slot];
    Cell.T = T;
  }

  Time controlDepTime(unsigned Slot) const {
    if (CdMerge.size() <= Frames.back().CdBase)
      return 0;
    const ShadowCell &Cell =
        CdCells[(CdMerge.size() - 1) * Cfg.NumLevels + Slot];
    return Cell.Tag == CurInstance[Slot] ? Cell.T : 0;
  }

  void popControlDep() {
    CdMerge.pop_back();
    CdPushBlock.pop_back();
    CdCells.resize(CdCells.size() - Cfg.NumLevels);
  }

  void noteTime(unsigned Slot, Time T) {
    ActiveRegion &R = Regions[Cfg.MinLevel + Slot];
    if (T > R.MaxTime)
      R.MaxTime = T;
  }

  void addWork(uint64_t Lat) {
    if (!Regions.empty())
      Regions.back().Work += Lat;
  }
};

} // namespace kremlin

#endif // KREMLIN_RT_KREMLINRUNTIME_H
