//===- rt/KremlinRuntime.h - The KremLib-equivalent runtime -----*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation runtime (the paper's KremLib): hierarchical critical
/// path analysis driven by per-instruction hooks. For every executed
/// operation it propagates availability times at every active nesting
/// level; for every dynamic region it tracks work and critical-path length
/// and emits a summary into a RegionSummarySink on exit.
///
/// Level model: the dynamic region stack index is the nesting level. A
/// configurable depth window [MinLevel, MinLevel + NumLevels) selects which
/// levels carry shadow timestamps (the paper's command-line flag for
/// partitioned HCPA collection); regions outside the window still measure
/// work, and report cp == work (serial assumption), which keeps parent
/// summaries well-formed.
///
/// Stale-data rejection: each level slot has a current region-instance id.
/// Memory and control-dependence shadow cells are tagged by the instance
/// that wrote them and read as time 0 under a tag mismatch — the paper's
/// mechanism for safely sharing one slot among all same-depth regions.
/// Register rows use an equivalent but cheaper form: one per-row watermark
/// compared against the slot's current instance id (see Frame).
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_RT_KREMLINRUNTIME_H
#define KREMLIN_RT_KREMLINRUNTIME_H

#include "ir/Instruction.h"
#include "rt/ProfEvent.h"
#include "rt/RegionSummary.h"
#include "rt/ShadowMemory.h"
#include "rt/Timestamp.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace kremlin {

/// Hard cap on the depth-window width (stack buffers size to this).
inline constexpr unsigned MaxTrackedLevels = 64;

/// Runtime configuration (the kremlin command-line knobs this reproduction
/// models).
struct KremlinConfig {
  /// First tracked nesting level (0 = the outermost function region).
  unsigned MinLevel = 0;
  /// Number of tracked levels (width of the shadow level arrays).
  unsigned NumLevels = 16;
  /// Shadow-memory page size in words.
  uint64_t SegmentWords = 4096;
  /// Shadow-memory byte budget; 0 = unlimited. Tripping it stops the
  /// profiled execution with a ResourceExhausted error instead of OOM.
  uint64_t MaxShadowBytes = 0;
  /// Region-nesting depth cap; 0 = unlimited. Exceeding it (runaway
  /// recursion in the profiled program) trips ResourceExhausted.
  unsigned MaxRegionDepth = 0;
  LatencyModel Latency;
};

/// Counters exposed for the overhead and compression experiments.
struct RuntimeStats {
  uint64_t DynInstructions = 0;
  uint64_t DynRegionEntries = 0;
  uint64_t Loads = 0;
  uint64_t Stores = 0;
  /// Level-slot retags on region entry (a new instance taking over a
  /// shadow level slot — the paper's slot-reuse mechanism in action).
  uint64_t LevelRetags = 0;
};

/// The HCPA runtime. One instance profiles one program execution.
class KremlinRuntime {
public:
  KremlinRuntime(const KremlinConfig &Cfg, RegionSummarySink &Sink);

  // --- Region lifecycle -------------------------------------------------

  void enterRegion(RegionId R);
  void exitRegion(RegionId R);
  unsigned depth() const { return static_cast<unsigned>(Regions.size()); }

  // --- Call frames (shadow register tables, §4.1) -------------------------

  void pushFrame(unsigned NumRegs);
  void popFrame();
  /// Copies an argument's times from the caller frame (one below top) into
  /// a parameter register of the callee frame (top).
  void copyParamFromCaller(ValueId DstParam, ValueId SrcArgInCaller);
  /// Copies the return value's times from the callee frame (top) into a
  /// register of the caller frame (one below top).
  void copyReturnToCaller(ValueId DstInCaller, ValueId SrcInCallee);

  // --- Control dependence (§4.1) ------------------------------------------

  /// Executes a conditional branch in block \p PushBlock: accounts its
  /// work/time and pushes its control dependence. The scope of one dynamic
  /// branch ends when control reaches \p MergeBlock (the immediate
  /// post-dominator) — or returns to \p PushBlock itself, which means a new
  /// dynamic instance of the same branch is about to execute (loop back
  /// edge). Ending the scope at re-entry keeps a counted loop's iterations
  /// from serializing through the loop test once induction chains are
  /// broken, while a data-dependent test still serializes through the
  /// condition value itself.
  void onCondBranch(ValueId CondReg, uint32_t MergeBlock,
                    uint32_t PushBlock);

  /// Pops control-dependence scopes that end at \p Block. Call on every
  /// block entry.
  void popControlDepsAtBlock(uint32_t Block) {
    while (CdMerge.size() > curFrame().CdBase &&
           (CdMerge.back() == Block ||
            CdPushBlock[CdMerge.size() - 1] == Block))
      popControlDep();
  }

  // --- Instruction hooks ----------------------------------------------------

  /// Generic operation: Dst = op(A, B) with latency from \p Op. Pass
  /// NoValue for unused operands/result. \p BreakDepA ignores the data
  /// dependence on A (induction/reduction update rule).
  void onOp(Opcode Op, ValueId Dst, ValueId A, ValueId B, bool BreakDepA);

  void onLoad(ValueId Dst, ValueId AddrReg, uint64_t Addr);
  void onStore(ValueId ValReg, ValueId AddrReg, uint64_t Addr);

  /// Accounts \p N zero-latency instructions whose shadow effect was proven
  /// a no-op at decode time (single-writer constant materializations: their
  /// rows only ever read as time 0, exactly like untouched rows). The
  /// event stream elides them and reports the tally in bulk at each flush.
  void noteFreeOps(uint64_t N) { Stats.DynInstructions += N; }

  // --- Batched event consumption ------------------------------------------

  /// Consumes \p N events in order, dispatching each onto the hook it
  /// encodes (see EvKind). This is the narrow API the interpreter's tape
  /// engine produces into: same hooks, same order, bit-identical profiles —
  /// but the whole batch runs as one tight loop on the consumption side.
  void consumeBatch(const ProfEvent *Ev, size_t N);

  /// Releases shadow segments for a frame's array storage when it dies.
  void releaseShadowRange(uint64_t Addr, uint64_t Words) {
    Memory.releaseRange(Addr, Words);
  }

  const RuntimeStats &stats() const { return Stats; }
  const KremlinConfig &config() const { return Cfg; }
  uint64_t shadowBytes() const { return Memory.allocatedBytes(); }

  /// True once a resource guardrail tripped (shadow byte budget, region
  /// depth cap, or an injected allocation fault). Cheap: two loads. The
  /// interpreter polls this once per basic block and aborts the execution
  /// with status() as the cause.
  bool failed() const { return !Err.ok() || !Memory.status().ok(); }
  /// The guardrail error (ok while healthy). Depth-cap errors take
  /// precedence over shadow-memory errors.
  const Status &status() const { return Err.ok() ? Memory.status() : Err; }
  /// Read access to the shadow memory (telemetry flush, tests).
  const ShadowMemory &shadowMemory() const { return Memory; }

  /// Work accumulated by the innermost active region so far (testing aid).
  uint64_t currentWork() const {
    return Regions.empty() ? 0 : Regions.back().Work;
  }
  /// Running critical-path max of the innermost region (testing aid).
  Time currentMaxTime() const {
    if (Regions.empty())
      return 0;
    unsigned Level = depth() - 1;
    if (Level >= Cfg.MinLevel && Level - Cfg.MinLevel < Cfg.NumLevels)
      return LevelMaxTimes[Level - Cfg.MinLevel];
    return 0; // Outside the window no availability times are measured.
  }

private:
  /// One active dynamic region (a region-stack entry). Its running
  /// critical-path max lives in LevelMaxTimes[its slot], not here: the hooks
  /// update every active slot per instruction, and a dense per-slot array
  /// turns that into a streaming update instead of a strided walk over this
  /// (fat) struct.
  struct ActiveRegion {
    RegionId Static = NoRegion;
    uint64_t Instance = 0;
    uint64_t Work = 0;
    /// Accumulated (child character, count); sorted at exit.
    std::vector<std::pair<SummaryChar, uint64_t>> Children;
  };

  /// One shadow register frame. Register rows carry a single watermark
  /// instead of per-slot instance tags: RowW[r] is the value NextInstance
  /// had when row r was last written (0 = never written this frame use),
  /// and slot s of the row is valid iff CurInstance[s] <= RowW[r].
  ///
  /// Why that one comparison is exact: instance ids come from one monotone
  /// counter, so ids issued after the write are strictly greater than W.
  ///  * A slot retagged after the write (its region exited/re-entered)
  ///    carries a fresher id than W — invalid, reads 0. Correct: the write
  ///    belonged to a dead instance.
  ///  * A slot that was INACTIVE at the write (deeper nesting entered
  ///    later) also carries a fresher id — so the garbage Cells beyond the
  ///    slots the write actually covered are provably unreachable, which
  ///    is what lets pushFrame recycle rows with a NumRegs x 8-byte
  ///    watermark clear instead of a NumRegs x NumLevels x 16-byte
  ///    cell fill, and lets rows drop tags entirely (half the traffic the
  ///    per-instruction hooks move).
  ///  * A slot active and un-retagged since the write has its id <= W —
  ///    valid, reads the written time.
  struct Frame {
    std::vector<Time> Cells;    ///< NumRegs x NumLevels availability times.
    std::vector<uint64_t> RowW; ///< Per-row write watermark.
    unsigned NumRegs = 0;
    size_t CdBase = 0; ///< Control-dep stack watermark at frame entry.
  };

  KremlinConfig Cfg;
  RegionSummarySink &Sink;
  ShadowMemory Memory;
  RuntimeStats Stats;
  Status Err;

  std::vector<ActiveRegion> Regions;
  /// Frame pool: entries [0, LiveFrames) are live; popped frames keep their
  /// Cells storage so call-heavy programs stop paying one allocation per
  /// call. Recycled cells are never re-zeroed: clearing the row watermarks
  /// invalidates every row at once (see Frame).
  std::vector<Frame> Frames;
  size_t LiveFrames = 0;
  /// Current region-instance id per level slot.
  std::vector<uint64_t> CurInstance;
  uint64_t NextInstance = 0;

  /// Control-dependence stack: one merge block + push block + NumLevels
  /// cells per entry.
  std::vector<uint32_t> CdMerge;
  std::vector<uint32_t> CdPushBlock;
  std::vector<ShadowCell> CdCells;

  // --- Hot-path caches ----------------------------------------------------
  // The per-instruction hooks run tens of millions of times per execution;
  // everything they would otherwise re-derive per call is kept here and
  // refreshed by the (rare) events that invalidate it: frame push/pop,
  // region enter/exit, control-dependence push/pop.

  /// Running critical-path max per level slot (the active regions' MaxTime,
  /// densely). Synced with the region stack at enter (slot reset to 0) and
  /// exit (read back as the popped region's cp).
  std::vector<Time> LevelMaxTimes;
  /// curFrame().Cells.data(); nullptr with no live frame.
  Time *FrameCells = nullptr;
  /// curFrame().RowW.data(), mirrored here so the hooks validate rows
  /// without touching the Frames vector.
  uint64_t *FrameRowW = nullptr;
  /// cdTopCells(), maintained incrementally.
  const ShadowCell *CdTop = nullptr;
  /// The top control dependence's contribution per slot under the CURRENT
  /// instance tags: CdNow[s] = CdTop[s].T if its tag matches, else 0.
  /// Shadow cells only change meaning at control events (branch push/pop,
  /// frame push/pop, region enter/exit) — all of them rare next to the
  /// tens of millions of onOp calls that read this — so the tag check is
  /// hoisted out of the per-instruction slot loops. Invariant: slots at or
  /// beyond SlotsActive are always 0, so a region entry activating a new
  /// slot needs no refresh.
  Time CdNow[MaxTrackedLevels] = {};
  /// &Regions.back().Work; nullptr with an empty region stack.
  uint64_t *TopWork = nullptr;
  /// activeSlots(), maintained at region enter/exit.
  unsigned SlotsActive = 0;
  /// Per-opcode latency, flattened from Cfg.Latency at construction.
  unsigned LatOf[static_cast<size_t>(Opcode::RegionExit) + 1] = {};

  void refreshCdTop() {
    CdTop = (LiveFrames > 0 &&
             CdMerge.size() > Frames[LiveFrames - 1].CdBase)
                ? &CdCells[(CdMerge.size() - 1) * Cfg.NumLevels]
                : nullptr;
  }

  void refreshCdNow() {
    unsigned Slots = SlotsActive;
    if (CdTop)
      for (unsigned Slot = 0; Slot < Slots; ++Slot)
        CdNow[Slot] =
            CdTop[Slot].Tag == CurInstance[Slot] ? CdTop[Slot].T : 0;
    else
      Slots = 0;
    for (unsigned Slot = Slots; Slot < Cfg.NumLevels; ++Slot)
      CdNow[Slot] = 0;
  }

  Frame &curFrame() {
    assert(LiveFrames > 0 && "no active frame");
    return Frames[LiveFrames - 1];
  }
  const Frame &curFrame() const {
    assert(LiveFrames > 0 && "no active frame");
    return Frames[LiveFrames - 1];
  }

  /// Number of level slots active right now: levels [MinLevel, depth)
  /// clipped to the window.
  unsigned activeSlots() const {
    unsigned Depth = depth();
    if (Depth <= Cfg.MinLevel)
      return 0;
    unsigned Active = Depth - Cfg.MinLevel;
    return Active < Cfg.NumLevels ? Active : Cfg.NumLevels;
  }

  /// Availability time of register \p Reg at \p Slot in frame \p F (the
  /// watermark check from the Frame doc comment). Cold-path helper; the
  /// hooks hoist the row pointer and watermark out of their slot loops.
  Time readRegTime(const Frame &F, ValueId Reg, unsigned Slot) const {
    return CurInstance[Slot] <= F.RowW[Reg]
               ? F.Cells[static_cast<size_t>(Reg) * Cfg.NumLevels + Slot]
               : 0;
  }

  void popControlDep() {
    CdMerge.pop_back();
    CdPushBlock.pop_back();
    CdCells.resize(CdCells.size() - Cfg.NumLevels);
    refreshCdTop();
    refreshCdNow();
  }

  void addWork(uint64_t Lat) {
    if (TopWork)
      *TopWork += Lat;
  }
};

} // namespace kremlin

#endif // KREMLIN_RT_KREMLINRUNTIME_H
