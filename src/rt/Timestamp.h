//===- rt/Timestamp.h - HCPA time and latency model -------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The availability-time type used by the HCPA runtime, and the per-opcode
/// latency model. Work and critical-path length are both measured in these
/// latency units (paper §4.1: availability time = max over dependences +
/// the operation's latency).
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_RT_TIMESTAMP_H
#define KREMLIN_RT_TIMESTAMP_H

#include "ir/Opcode.h"

#include <cstdint>

namespace kremlin {

/// Region-relative availability time, in latency units.
using Time = uint64_t;

/// Per-opcode latency table. The defaults make work approximate the
/// dynamic instruction count: every real operation costs 1; artifacts of
/// lowering that a compiler would fold away (constants, register moves,
/// address-base materialization, region markers) cost 0.
struct LatencyModel {
  unsigned Arith = 1;    ///< Integer/float arithmetic, compares, logic.
  unsigned Memory = 1;   ///< Load/Store.
  unsigned AddrCalc = 1; ///< PtrAdd (indexing arithmetic).
  unsigned Branch = 1;   ///< Br/CondBr/Ret.
  unsigned CallOp = 1;   ///< Call result materialization.
  unsigned Free = 0;     ///< Constants, moves, base addresses, markers.

  unsigned latencyFor(Opcode Op) const {
    switch (Op) {
    case Opcode::ConstInt:
    case Opcode::ConstFloat:
    case Opcode::Move:
    case Opcode::GlobalAddr:
    case Opcode::FrameAddr:
    case Opcode::RegionEnter:
    case Opcode::RegionExit:
      return Free;
    case Opcode::Load:
    case Opcode::Store:
      return Memory;
    case Opcode::PtrAdd:
      return AddrCalc;
    case Opcode::Br:
    case Opcode::CondBr:
    case Opcode::Ret:
      return Branch;
    case Opcode::Call:
      return CallOp;
    default:
      return Arith;
    }
  }
};

} // namespace kremlin

#endif // KREMLIN_RT_TIMESTAMP_H
