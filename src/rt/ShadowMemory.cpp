//===- rt/ShadowMemory.cpp ------------------------------------------------===//

#include "rt/ShadowMemory.h"

#include "support/FaultInjection.h"
#include "support/StringUtils.h"

using namespace kremlin;

bool ShadowMemory::allocateSegment(uint64_t Seg) {
  if (!Err.ok())
    return false;
  uint64_t SegmentBytes = SegmentWords * NumLevels * sizeof(ShadowCell);
  if (ByteBudget != 0 && allocatedBytes() + SegmentBytes > ByteBudget) {
    Err = Status::error(
        ErrorCode::ResourceExhausted,
        formatString("shadow-memory byte budget (%s) exceeded: %llu segments "
                     "of %s each already live",
                     formatBytes(ByteBudget).c_str(),
                     static_cast<unsigned long long>(AllocatedSegments),
                     formatBytes(SegmentBytes).c_str()));
    return false;
  }
  if (fault::enabled() && fault::shouldFail(fault::Site::Alloc)) {
    Err = Status::error(ErrorCode::FaultInjected,
                        "shadow-segment allocation failed (KREMLIN_FAULT=" +
                            fault::activeSpec() + ")");
    return false;
  }
  Directory[Seg] = std::make_unique<ShadowCell[]>(SegmentWords * NumLevels);
  ++AllocatedSegments;
  return true;
}

void ShadowMemory::releaseRange(uint64_t Addr, uint64_t Words) {
  if (Words == 0)
    return;
  uint64_t FirstSeg = (Addr + SegmentWords - 1) / SegmentWords;
  uint64_t LastSeg = (Addr + Words) / SegmentWords; // Exclusive.
  for (uint64_t Seg = FirstSeg; Seg < LastSeg && Seg < Directory.size();
       ++Seg) {
    if (Directory[Seg]) {
      Directory[Seg].reset();
      --AllocatedSegments;
      ++ReleasedSegments;
    }
  }
}
