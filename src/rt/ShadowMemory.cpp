//===- rt/ShadowMemory.cpp ------------------------------------------------===//

#include "rt/ShadowMemory.h"

using namespace kremlin;

void ShadowMemory::releaseRange(uint64_t Addr, uint64_t Words) {
  if (Words == 0)
    return;
  uint64_t FirstSeg = (Addr + SegmentWords - 1) / SegmentWords;
  uint64_t LastSeg = (Addr + Words) / SegmentWords; // Exclusive.
  for (uint64_t Seg = FirstSeg; Seg < LastSeg && Seg < Directory.size();
       ++Seg) {
    if (Directory[Seg]) {
      Directory[Seg].reset();
      --AllocatedSegments;
      ++ReleasedSegments;
    }
  }
}
