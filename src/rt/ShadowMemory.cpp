//===- rt/ShadowMemory.cpp ------------------------------------------------===//

#include "rt/ShadowMemory.h"

#include "support/FaultInjection.h"
#include "support/StringUtils.h"

#include <cstring>

using namespace kremlin;

namespace {

/// Smallest power of two >= \p V (V >= 1).
uint64_t roundUpPow2(uint64_t V) {
  uint64_t P = 1;
  while (P < V)
    P <<= 1;
  return P;
}

unsigned log2Exact(uint64_t Pow2) {
  unsigned S = 0;
  while ((uint64_t(1) << S) != Pow2)
    ++S;
  return S;
}

/// Slab granularity: carve pages out of ~1 MiB slabs so small-page
/// configurations (tests, narrow depth windows) don't pay one malloc per
/// page, while the default 1 MiB page degenerates to one page per slab.
constexpr uint64_t SlabTargetBytes = uint64_t(1) << 20;

} // namespace

ShadowMemory::ShadowMemory(unsigned NumLevels, uint64_t SegmentWords,
                           uint64_t ByteBudget)
    : NumLevels(NumLevels), PageWords(roundUpPow2(SegmentWords ? SegmentWords
                                                              : 1)),
      PageShift(log2Exact(PageWords)), PageMask(PageWords - 1),
      ByteBudget(ByteBudget) {}

ShadowCell *ShadowMemory::allocatePage(uint64_t Page) {
  if (!Err.ok())
    return nullptr;
  uint64_t PageBytes = pageBytes();
  if (ByteBudget != 0 && allocatedBytes() + PageBytes > ByteBudget) {
    Err = Status::error(
        ErrorCode::ResourceExhausted,
        formatString("shadow-memory byte budget (%s) exceeded: %llu segments "
                     "of %s each already live",
                     formatBytes(ByteBudget).c_str(),
                     static_cast<unsigned long long>(AllocatedPages),
                     formatBytes(PageBytes).c_str()));
    return nullptr;
  }
  if (fault::enabled() && fault::shouldFail(fault::Site::Alloc)) {
    Err = Status::error(ErrorCode::FaultInjected,
                        "shadow-segment allocation failed (KREMLIN_FAULT=" +
                            fault::activeSpec() + ")");
    return nullptr;
  }

  ShadowCell *P;
  if (!FreePages.empty()) {
    // Pool hit: recycle a released page. Zeroing restores the "fresh
    // memory" invariant — stale tags from a previous frame could otherwise
    // alias a still-live region instance.
    P = FreePages.back();
    FreePages.pop_back();
    std::memset(P, 0, PageBytes);
  } else {
    if (SlabPagesLeft == 0) {
      uint64_t SlabPages = SlabTargetBytes / PageBytes;
      if (SlabPages < 1)
        SlabPages = 1;
      if (ByteBudget != 0) {
        // Never let slab slack exceed the budget: cap the carve-ahead to
        // the pages the budget could still admit.
        uint64_t BudgetPages = (ByteBudget - allocatedBytes()) / PageBytes;
        if (BudgetPages < 1)
          BudgetPages = 1;
        if (SlabPages > BudgetPages)
          SlabPages = BudgetPages;
      }
      // make_unique value-initializes: slab pages start zeroed.
      Slabs.push_back(
          std::make_unique<ShadowCell[]>(SlabPages * pageCells()));
      SlabCur = Slabs.back().get();
      SlabPagesLeft = SlabPages;
    }
    P = SlabCur;
    SlabCur += pageCells();
    --SlabPagesLeft;
  }

  uint64_t Hi = Page >> DirBits;
  if (Hi >= Dir.size())
    Dir.resize(Hi + 1);
  if (!Dir[Hi])
    Dir[Hi] = std::make_unique<DirNode>();
  Dir[Hi]->Pages[Page & DirMask] = P;
  ++AllocatedPages;
  return P;
}

void ShadowMemory::releaseRange(uint64_t Addr, uint64_t Words) {
  if (Words == 0)
    return;
  uint64_t FirstPage = (Addr + PageWords - 1) >> PageShift;
  uint64_t LastPage = (Addr + Words) >> PageShift; // Exclusive.
  for (uint64_t Page = FirstPage; Page < LastPage; ++Page) {
    uint64_t Hi = Page >> DirBits;
    if (Hi >= Dir.size() || !Dir[Hi])
      continue;
    ShadowCell *&Slot = Dir[Hi]->Pages[Page & DirMask];
    if (Slot) {
      FreePages.push_back(Slot);
      Slot = nullptr;
      --AllocatedPages;
      ++ReleasedPages;
    }
  }
}
