//===- rt/ProfEvent.h - Batched profiling event stream ----------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The narrow interface between event-stream generation (the interpreter, or
/// any future frontend replaying a real execution) and HCPA consumption
/// (KremlinRuntime). The producer appends fixed-size ProfEvent records to a
/// buffer and hands full batches to KremlinRuntime::consumeBatch(); events
/// are consumed strictly in order, so a batched stream produces bit-identical
/// profiles to the equivalent sequence of direct hook calls.
///
/// Nothing in the stream flows back to the producer: every hook is
/// fire-and-forget, and the only feedback channel is the coarse
/// KremlinRuntime::failed() guardrail poll after a flush. This is what lets
/// the interpreter's dispatch loop run without touching runtime state.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_RT_PROFEVENT_H
#define KREMLIN_RT_PROFEVENT_H

#include <cstddef>
#include <cstdint>

namespace kremlin {

/// Discriminator for ProfEvent. Each kind maps 1:1 onto one KremlinRuntime
/// hook; see consumeBatch() for the exact dispatch.
enum class EvKind : uint8_t {
  Op,           ///< onOp(Op, A=Dst, B=SrcA, C=SrcB, Flags&1=BreakDepA)
  Load,         ///< onLoad(A=Dst, B=AddrReg, Addr)
  Store,        ///< onStore(A=ValReg, B=AddrReg, Addr)
  CondBranch,   ///< onCondBranch(A=CondReg, B=MergeBlock, C=PushBlock)
  BlockEntry,   ///< popControlDepsAtBlock(A=Block)
  RegionEnter,  ///< enterRegion(A=RegionId)
  RegionExit,   ///< exitRegion(A=RegionId)
  PushFrame,    ///< pushFrame(A=NumRegs)
  PopFrame,     ///< popFrame()
  CopyParam,    ///< copyParamFromCaller(A=DstParam, B=SrcArgInCaller)
  CopyReturn,   ///< copyReturnToCaller(A=DstInCaller, B=SrcInCallee)
  ReleaseRange, ///< releaseShadowRange(Addr, Words=B | C<<32)
};

/// One profiling event. 24 bytes, trivially copyable; field use per kind is
/// documented on EvKind. Opc carries the IR opcode for EvKind::Op.
struct ProfEvent {
  uint8_t Kind = 0;
  uint8_t Opc = 0;
  uint8_t Flags = 0;
  uint8_t Pad = 0;
  uint32_t A = 0;
  uint32_t B = 0;
  uint32_t C = 0;
  uint64_t Addr = 0;

  uint64_t words() const { return uint64_t(B) | (uint64_t(C) << 32); }
};

static_assert(sizeof(ProfEvent) == 24, "keep the event record dense");

/// Producer-side batch size: big enough to amortize the flush call, small
/// enough that the buffer (24 KiB) stays L1-resident alongside the
/// interpreter's registers and the runtime's hot shadow rows — each event
/// is written once and read back once, so a cache-busting buffer pays the
/// round trip twice.
inline constexpr size_t ProfEventBatchSize = 1024;

} // namespace kremlin

#endif // KREMLIN_RT_PROFEVENT_H
