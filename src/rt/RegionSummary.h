//===- rt/RegionSummary.h - Dynamic region summaries -------------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The record the HCPA runtime produces when a dynamic region exits (paper
/// §4.2: "This summary contains the static region ID, the total work in the
/// region, and the critical path length"), plus the sink interface the
/// runtime streams summaries into. The production sink is the dictionary
/// compressor (src/compress); tests use simple recording sinks.
///
/// Children are described in terms of already-interned summaries — a sorted
/// (character, frequency) list — exactly the alphabet representation of
/// §4.4 ("the children used in the tuple are defined in terms of the
/// existing alphabet rather than the raw region info").
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_RT_REGIONSUMMARY_H
#define KREMLIN_RT_REGIONSUMMARY_H

#include "ir/Region.h"
#include "rt/Timestamp.h"

#include <cstdint>
#include <vector>

namespace kremlin {

/// Index of an interned summary in the compressor's alphabet.
using SummaryChar = uint32_t;

/// One dynamic region instance's summary at exit.
struct DynRegionSummary {
  RegionId Static = NoRegion;
  /// Total work executed while the region was live (self + children).
  uint64_t Work = 0;
  /// Critical-path length at this region's nesting level.
  Time Cp = 0;
  /// Sorted (child character, occurrence count) pairs.
  std::vector<std::pair<SummaryChar, uint64_t>> Children;

  /// Total dynamic children (sum of frequencies) — for loops this is the
  /// iteration count used by DOALL detection.
  uint64_t numDynamicChildren() const {
    uint64_t N = 0;
    for (const auto &[C, Freq] : Children)
      N += Freq;
    return N;
  }

  bool operator==(const DynRegionSummary &O) const {
    return Static == O.Static && Work == O.Work && Cp == O.Cp &&
           Children == O.Children;
  }
};

/// Receives summaries as dynamic regions exit. intern() must return a
/// stable character for equal summaries (the dictionary compression step);
/// onRootExit() is called when a top-level region (main) exits.
class RegionSummarySink {
public:
  virtual ~RegionSummarySink() = default;

  /// Interns \p Summary and returns its character.
  virtual SummaryChar intern(DynRegionSummary Summary) = 0;

  /// Notes that the outermost region exited with character \p Root.
  virtual void onRootExit(SummaryChar Root) = 0;
};

} // namespace kremlin

#endif // KREMLIN_RT_REGIONSUMMARY_H
