//===- rt/ShadowMemory.h - Hierarchical shadow memory -----------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-level shadow memory of paper §4.1-4.2. Every tracked word of
/// program memory carries a fixed-size array of per-nesting-level shadow
/// cells; each cell holds an availability time plus the region-instance tag
/// that wrote it. Reading a cell whose tag does not match the current
/// region instance at that level yields time 0 ("discarding the data if
/// there is a mismatch and assuming time 0 instead") — this is how one slot
/// is safely reused by the many same-depth regions of the program.
///
/// Storage is a two-level table: a page directory of lazily allocated
/// segments ("Kremlin allocates table entries only when they are needed"),
/// mirroring the paper's dynamic shadow-memory allocation.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_RT_SHADOWMEMORY_H
#define KREMLIN_RT_SHADOWMEMORY_H

#include "rt/Timestamp.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace kremlin {

/// One (time, writer-instance-tag) shadow cell.
struct ShadowCell {
  uint64_t Tag = 0;
  Time T = 0;
};

/// Two-level, lazily allocated shadow memory over word addresses.
class ShadowMemory {
public:
  /// \p NumLevels is the size of the per-word level array (the depth window
  /// width); \p SegmentWords is the page size of the lazy second level.
  /// \p ByteBudget caps total shadow bytes (0 = unlimited): the first
  /// allocation that would exceed it records a ResourceExhausted status and
  /// later writes to unallocated segments become no-ops.
  explicit ShadowMemory(unsigned NumLevels, uint64_t SegmentWords = 4096,
                        uint64_t ByteBudget = 0)
      : NumLevels(NumLevels), SegmentWords(SegmentWords),
        ByteBudget(ByteBudget) {}

  /// Reads the time for \p Addr at level slot \p Slot, tag-checked against
  /// \p Tag: a missing segment or stale tag reads as 0.
  Time read(uint64_t Addr, unsigned Slot, uint64_t Tag) const {
    ++Reads;
    uint64_t Seg = Addr / SegmentWords;
    if (Seg >= Directory.size() || !Directory[Seg])
      return 0;
    const ShadowCell &Cell =
        Directory[Seg][(Addr % SegmentWords) * NumLevels + Slot];
    return Cell.Tag == Tag ? Cell.T : 0;
  }

  /// Writes time \p T for \p Addr at level slot \p Slot with tag \p Tag,
  /// allocating the segment on first touch. Once the byte budget trips the
  /// write is dropped (status() reports the error; the caller polls it at a
  /// coarse boundary rather than per write).
  void write(uint64_t Addr, unsigned Slot, uint64_t Tag, Time T) {
    ++Writes;
    uint64_t Seg = Addr / SegmentWords;
    if (Seg >= Directory.size())
      Directory.resize(Seg + 1);
    if (!Directory[Seg] && !allocateSegment(Seg))
      return;
    ShadowCell &Cell =
        Directory[Seg][(Addr % SegmentWords) * NumLevels + Slot];
    Cell.Tag = Tag;
    Cell.T = T;
  }

  /// Drops the segments covering [\p Addr, \p Addr + \p Words): the
  /// free()-driven reclamation hook of the paper. Partially covered
  /// segments are kept.
  void releaseRange(uint64_t Addr, uint64_t Words);

  unsigned numLevels() const { return NumLevels; }
  uint64_t segmentWords() const { return SegmentWords; }
  uint64_t allocatedSegments() const { return AllocatedSegments; }

  /// Lifetime tallies for self-telemetry (timestamp read/write volume and
  /// free()-driven reclamation). Plain members — one ShadowMemory is only
  /// ever touched by one thread — flushed into the process-wide telemetry
  /// registry by the driver after a profiled execution.
  uint64_t timestampReads() const { return Reads; }
  uint64_t timestampWrites() const { return Writes; }
  uint64_t releasedSegments() const { return ReleasedSegments; }

  /// Shadow bytes currently allocated (for overhead reporting).
  uint64_t allocatedBytes() const {
    return AllocatedSegments * SegmentWords * NumLevels * sizeof(ShadowCell);
  }
  /// Configured byte budget (0 = unlimited).
  uint64_t byteBudget() const { return ByteBudget; }

  /// Ok until the byte budget trips (or a fault-injected allocation
  /// failure); then a ResourceExhausted/FaultInjected error.
  const Status &status() const { return Err; }

private:
  /// Allocation slow path: budget + fault-injection checks live here, off
  /// the per-write fast path. Returns false when the segment was refused.
  bool allocateSegment(uint64_t Seg);

  unsigned NumLevels;
  uint64_t SegmentWords;
  uint64_t ByteBudget;
  Status Err;
  std::vector<std::unique_ptr<ShadowCell[]>> Directory;
  uint64_t AllocatedSegments = 0;
  mutable uint64_t Reads = 0; ///< read() is logically const; the tally isn't.
  uint64_t Writes = 0;
  uint64_t ReleasedSegments = 0;
};

} // namespace kremlin

#endif // KREMLIN_RT_SHADOWMEMORY_H
