//===- rt/ShadowMemory.h - Hierarchical shadow memory -----------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The multi-level shadow memory of paper §4.1-4.2. Every tracked word of
/// program memory carries a fixed-size array of per-nesting-level shadow
/// cells; each cell holds an availability time plus the region-instance tag
/// that wrote it. Reading a cell whose tag does not match the current
/// region instance at that level yields time 0 ("discarding the data if
/// there is a mismatch and assuming time 0 instead") — this is how one slot
/// is safely reused by the many same-depth regions of the program.
///
/// Storage follows the original Kremlin runtime's idioms: a two-level page
/// table (directory of lazily allocated second-level tables, which point at
/// fixed-size cell pages) with all sizes powers of two so every lookup is
/// shift+mask, and a slab/pool allocator underneath — pages are carved out
/// of slabs and recycled through a free list on releaseRange(). Recycled
/// pages are zeroed before reuse: tag 0 never matches a live region
/// instance, so a zero page is indistinguishable from fresh memory.
///
/// The per-word hot path for the HCPA runtime is wordCells() /
/// wordCellsForWrite(): one page lookup returns the whole NumLevels cell
/// array for a word, so a load/store touches the table once instead of once
/// per nesting level.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_RT_SHADOWMEMORY_H
#define KREMLIN_RT_SHADOWMEMORY_H

#include "rt/Timestamp.h"
#include "support/Status.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace kremlin {

/// One (time, writer-instance-tag) shadow cell.
struct ShadowCell {
  uint64_t Tag = 0;
  Time T = 0;
};

/// Two-level, lazily allocated, pool-backed shadow memory over word
/// addresses.
class ShadowMemory {
public:
  /// \p NumLevels is the size of the per-word level array (the depth window
  /// width); \p SegmentWords is the page size of the lazy second level,
  /// rounded up to a power of two so the page lookup is shift+mask.
  /// \p ByteBudget caps total shadow bytes (0 = unlimited): the first
  /// allocation that would exceed it records a ResourceExhausted status and
  /// later writes to unallocated pages become no-ops.
  explicit ShadowMemory(unsigned NumLevels, uint64_t SegmentWords = 4096,
                        uint64_t ByteBudget = 0);

  ShadowMemory(const ShadowMemory &) = delete;
  ShadowMemory &operator=(const ShadowMemory &) = delete;

  /// Hot path: the NumLevels-cell array shadowing word \p Addr, or nullptr
  /// when its page was never allocated (reads as time 0 everywhere).
  const ShadowCell *wordCells(uint64_t Addr) const {
    uint64_t Page = Addr >> PageShift;
    uint64_t Hi = Page >> DirBits;
    if (Hi >= Dir.size() || !Dir[Hi])
      return nullptr;
    ShadowCell *P = Dir[Hi]->Pages[Page & DirMask];
    if (!P)
      return nullptr;
    return P + (Addr & PageMask) * NumLevels;
  }

  /// Hot path: like wordCells() but allocates the page on first touch.
  /// Returns nullptr when allocation was refused (budget trip or injected
  /// fault) — the caller drops the write, exactly like the pre-page-table
  /// behaviour.
  ShadowCell *wordCellsForWrite(uint64_t Addr) {
    uint64_t Page = Addr >> PageShift;
    uint64_t Hi = Page >> DirBits;
    ShadowCell *P = (Hi < Dir.size() && Dir[Hi])
                        ? Dir[Hi]->Pages[Page & DirMask]
                        : nullptr;
    if (!P) {
      P = allocatePage(Page);
      if (!P)
        return nullptr;
    }
    return P + (Addr & PageMask) * NumLevels;
  }

  /// Reads the time for \p Addr at level slot \p Slot, tag-checked against
  /// \p Tag: a missing page or stale tag reads as 0.
  Time read(uint64_t Addr, unsigned Slot, uint64_t Tag) const {
    ++Reads;
    const ShadowCell *Cells = wordCells(Addr);
    if (!Cells)
      return 0;
    return Cells[Slot].Tag == Tag ? Cells[Slot].T : 0;
  }

  /// Writes time \p T for \p Addr at level slot \p Slot with tag \p Tag,
  /// allocating the page on first touch. Once the byte budget trips the
  /// write is dropped (status() reports the error; the caller polls it at a
  /// coarse boundary rather than per write).
  void write(uint64_t Addr, unsigned Slot, uint64_t Tag, Time T) {
    ++Writes;
    ShadowCell *Cells = wordCellsForWrite(Addr);
    if (!Cells)
      return;
    Cells[Slot].Tag = Tag;
    Cells[Slot].T = T;
  }

  /// Batch-counting entry points for the runtime, which tallies one logical
  /// timestamp read/write per active level but touches the page table once.
  void noteReads(uint64_t N) const { Reads += N; }
  void noteWrites(uint64_t N) { Writes += N; }

  /// Returns the pages covering [\p Addr, \p Addr + \p Words) to the free
  /// pool: the free()-driven reclamation hook of the paper. Partially
  /// covered pages are kept.
  void releaseRange(uint64_t Addr, uint64_t Words);

  unsigned numLevels() const { return NumLevels; }
  uint64_t segmentWords() const { return PageWords; }
  uint64_t allocatedSegments() const { return AllocatedPages; }

  /// Lifetime tallies for self-telemetry (timestamp read/write volume and
  /// free()-driven reclamation). Plain members — one ShadowMemory is only
  /// ever touched by one thread — flushed into the process-wide telemetry
  /// registry by the driver after a profiled execution.
  uint64_t timestampReads() const { return Reads; }
  uint64_t timestampWrites() const { return Writes; }
  uint64_t releasedSegments() const { return ReleasedPages; }

  /// Shadow bytes currently live (for overhead reporting and the byte
  /// budget). Counts pages handed out, not slab slack.
  uint64_t allocatedBytes() const { return AllocatedPages * pageBytes(); }
  /// Configured byte budget (0 = unlimited).
  uint64_t byteBudget() const { return ByteBudget; }

  /// Ok until the byte budget trips (or a fault-injected allocation
  /// failure); then a ResourceExhausted/FaultInjected error.
  const Status &status() const { return Err; }

private:
  /// Directory fan-out: 1 << DirBits pages per second-level table.
  static constexpr unsigned DirBits = 10;
  static constexpr uint64_t DirMask = (uint64_t(1) << DirBits) - 1;

  /// Second-level table: a fixed fan-out of page pointers. Pages are owned
  /// by the slabs; these are weak pointers.
  struct DirNode {
    ShadowCell *Pages[uint64_t(1) << DirBits] = {};
  };

  uint64_t pageBytes() const {
    return PageWords * NumLevels * sizeof(ShadowCell);
  }
  uint64_t pageCells() const { return PageWords * NumLevels; }

  /// Allocation slow path: budget + fault-injection checks, then the pool
  /// (zeroed recycled page) or the current slab. Returns the installed page
  /// or nullptr when the allocation was refused.
  ShadowCell *allocatePage(uint64_t Page);

  unsigned NumLevels;
  uint64_t PageWords; ///< Words per page (power of two).
  unsigned PageShift; ///< log2(PageWords).
  uint64_t PageMask;  ///< PageWords - 1.
  uint64_t ByteBudget;
  Status Err;

  /// First level: page index >> DirBits, grown lazily.
  std::vector<std::unique_ptr<DirNode>> Dir;
  /// Slabs owning the page storage; pages are carved off SlabCur.
  std::vector<std::unique_ptr<ShadowCell[]>> Slabs;
  ShadowCell *SlabCur = nullptr;
  uint64_t SlabPagesLeft = 0;
  /// Recycled pages, zeroed on reuse.
  std::vector<ShadowCell *> FreePages;

  uint64_t AllocatedPages = 0;
  mutable uint64_t Reads = 0; ///< read() is logically const; the tally isn't.
  uint64_t Writes = 0;
  uint64_t ReleasedPages = 0;
};

} // namespace kremlin

#endif // KREMLIN_RT_SHADOWMEMORY_H
