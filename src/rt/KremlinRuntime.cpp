//===- rt/KremlinRuntime.cpp ----------------------------------------------===//

#include "rt/KremlinRuntime.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstring>

using namespace kremlin;

namespace {
/// All-zero control-dependence row for BreakDep operations: lets the onOp
/// slot loop read through one unconditional pointer.
const Time ZeroTimes[MaxTrackedLevels] = {};
} // namespace

KremlinRuntime::KremlinRuntime(const KremlinConfig &Cfg,
                               RegionSummarySink &Sink)
    : Cfg(Cfg), Sink(Sink),
      Memory(Cfg.NumLevels, Cfg.SegmentWords, Cfg.MaxShadowBytes) {
  assert(Cfg.NumLevels >= 1 && Cfg.NumLevels <= MaxTrackedLevels &&
         "NumLevels outside the supported window");
  CurInstance.assign(Cfg.NumLevels, 0);
  LevelMaxTimes.assign(Cfg.NumLevels, 0);
  for (size_t Op = 0; Op < sizeof(LatOf) / sizeof(LatOf[0]); ++Op)
    LatOf[Op] = Cfg.Latency.latencyFor(static_cast<Opcode>(Op));
}

void KremlinRuntime::enterRegion(RegionId R) {
  unsigned Level = depth();
  // Depth guardrail: record the error but still push the region so every
  // exitRegion stays matched while the interpreter unwinds to its next
  // failure poll.
  if (Cfg.MaxRegionDepth != 0 && Level >= Cfg.MaxRegionDepth && Err.ok())
    Err = Status::error(
        ErrorCode::ResourceExhausted,
        formatString("region nesting depth cap (%u) exceeded",
                     Cfg.MaxRegionDepth));
  uint64_t Instance = ++NextInstance;
  if (Level >= Cfg.MinLevel && Level - Cfg.MinLevel < Cfg.NumLevels) {
    // Retag the slot: every shadow cell written by older same-depth regions
    // now reads as time 0. The fresh region starts with an empty critical
    // path.
    CurInstance[Level - Cfg.MinLevel] = Instance;
    LevelMaxTimes[Level - Cfg.MinLevel] = 0;
    ++Stats.LevelRetags;
  }
  ActiveRegion A;
  A.Static = R;
  A.Instance = Instance;
  Regions.push_back(std::move(A));
  ++Stats.DynRegionEntries;
  TopWork = &Regions.back().Work;
  SlotsActive = activeSlots();
}

void KremlinRuntime::exitRegion(RegionId R) {
  assert(!Regions.empty() && "region exit with empty region stack");
  ActiveRegion Top = std::move(Regions.back());
  Regions.pop_back();
  assert(Top.Static == R && "mismatched region exit");
  (void)R;

  unsigned Level = depth(); // Level the popped region occupied.
  TopWork = Regions.empty() ? nullptr : &Regions.back().Work;
  SlotsActive = activeSlots();
  bool Tracked =
      Level >= Cfg.MinLevel && Level - Cfg.MinLevel < Cfg.NumLevels;
  // Keep the CdNow invariant: slots at or beyond SlotsActive read 0, so a
  // later region entry can reactivate this slot without a refresh.
  if (Tracked)
    CdNow[Level - Cfg.MinLevel] = 0;
  // Outside the tracked window we never measured availability times; fall
  // back to the serial assumption cp == work so summaries stay well-formed.
  Time Cp = Tracked ? LevelMaxTimes[Level - Cfg.MinLevel] : Top.Work;
  // Work is a trivial upper bound... cp can exceed work only through
  // control-dependence times carried from sibling iterations; clamp.
  if (Cp > Top.Work)
    Cp = Top.Work;

  std::sort(Top.Children.begin(), Top.Children.end());
  DynRegionSummary S;
  S.Static = Top.Static;
  S.Work = Top.Work;
  S.Cp = Cp;
  S.Children = std::move(Top.Children);
  SummaryChar C = Sink.intern(std::move(S));

  if (Regions.empty()) {
    Sink.onRootExit(C);
    return;
  }
  ActiveRegion &Parent = Regions.back();
  Parent.Work += Top.Work;
  // Linear scan: regions have few distinct child characters in practice
  // (that is exactly why the dictionary compression works).
  for (auto &[Char, Count] : Parent.Children) {
    if (Char == C) {
      ++Count;
      return;
    }
  }
  Parent.Children.emplace_back(C, 1);
}

void KremlinRuntime::pushFrame(unsigned NumRegs) {
  if (LiveFrames == Frames.size())
    Frames.emplace_back();
  Frame &F = Frames[LiveFrames++];
  F.NumRegs = NumRegs;
  // Grow-only; clearing the watermarks invalidates every recycled row at
  // once (see the Frame doc comment), so no cell is ever re-zeroed here.
  size_t NeedCells = static_cast<size_t>(NumRegs) * Cfg.NumLevels;
  if (F.Cells.size() < NeedCells)
    F.Cells.resize(NeedCells);
  if (F.RowW.size() < NumRegs)
    F.RowW.resize(NumRegs);
  std::memset(F.RowW.data(), 0, static_cast<size_t>(NumRegs) *
                                    sizeof(uint64_t));
  F.CdBase = CdMerge.size();
  FrameCells = F.Cells.data();
  FrameRowW = F.RowW.data();
  CdTop = nullptr; // The new frame has no open control scope yet.
  refreshCdNow();
}

void KremlinRuntime::popFrame() {
  assert(LiveFrames > 0 && "popFrame with no frames");
  Frame &F = Frames[LiveFrames - 1];
  // Abandon control dependences opened in this frame (early returns).
  CdMerge.resize(F.CdBase);
  CdPushBlock.resize(F.CdBase);
  CdCells.resize(CdMerge.size() * Cfg.NumLevels);
  --LiveFrames;
  if (LiveFrames > 0) {
    Frame &Top = Frames[LiveFrames - 1];
    FrameCells = Top.Cells.data();
    FrameRowW = Top.RowW.data();
  } else {
    FrameCells = nullptr;
    FrameRowW = nullptr;
  }
  refreshCdTop();
  refreshCdNow();
}

void KremlinRuntime::copyParamFromCaller(ValueId DstParam,
                                         ValueId SrcArgInCaller) {
  assert(LiveFrames >= 2 && "no caller frame");
  Frame &Callee = Frames[LiveFrames - 1];
  Frame &Caller = Frames[LiveFrames - 2];
  // The watermark travels with the times: validity is a property of the
  // write that produced the row, not of the frame holding the copy.
  uint64_t W = Caller.RowW[SrcArgInCaller];
  Callee.RowW[DstParam] = W;
  if (W == 0)
    return; // Source row unwritten: the copy reads as 0 everywhere.
  const Time *Src =
      &Caller.Cells[static_cast<size_t>(SrcArgInCaller) * Cfg.NumLevels];
  std::copy(Src, Src + Cfg.NumLevels,
            &Callee.Cells[static_cast<size_t>(DstParam) * Cfg.NumLevels]);
}

void KremlinRuntime::copyReturnToCaller(ValueId DstInCaller,
                                        ValueId SrcInCallee) {
  assert(LiveFrames >= 2 && "no caller frame");
  Frame &Callee = Frames[LiveFrames - 1];
  Frame &Caller = Frames[LiveFrames - 2];
  uint64_t W = Callee.RowW[SrcInCallee];
  Caller.RowW[DstInCaller] = W;
  if (W == 0)
    return; // Source row unwritten: the copy reads as 0 everywhere.
  const Time *Src =
      &Callee.Cells[static_cast<size_t>(SrcInCallee) * Cfg.NumLevels];
  std::copy(Src, Src + Cfg.NumLevels,
            &Caller.Cells[static_cast<size_t>(DstInCaller) * Cfg.NumLevels]);
}

void KremlinRuntime::onCondBranch(ValueId CondReg, uint32_t MergeBlock,
                                  uint32_t PushBlock) {
  unsigned Lat = LatOf[static_cast<size_t>(Opcode::CondBr)];
  addWork(Lat);
  ++Stats.DynInstructions;
  Frame &F = curFrame();
  unsigned Slots = SlotsActive;

  // Branch availability per slot: max(enclosing control dep, condition) +
  // latency. When the top entry already targets the same merge block (a
  // loop back edge re-branching every iteration, or an if re-entered in a
  // new iteration) the new branch instance REPLACES it: each dynamic branch
  // is its own control dependence, so a counted loop whose condition only
  // reads broken induction chains does not serialize its iterations, while
  // a data-dependent condition (while (err > tol)) still does — its time
  // flows in through CondReg. The enclosing dependence is the entry below
  // the one being replaced.
  bool Coalesce = CdMerge.size() > F.CdBase &&
                  CdMerge.back() == MergeBlock &&
                  CdPushBlock.back() == PushBlock;
  size_t OuterIdx = CdMerge.size() - (Coalesce ? 2 : 1); // May underflow...
  bool HasOuter = CdMerge.size() >= (Coalesce ? 2u : 1u) &&
                  OuterIdx + 1 > F.CdBase; // ...guarded here.
  Time NewT[MaxTrackedLevels];
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    Time T = 0;
    if (HasOuter) {
      const ShadowCell &Cell = CdCells[OuterIdx * Cfg.NumLevels + Slot];
      if (Cell.Tag == CurInstance[Slot])
        T = Cell.T;
    }
    Time Tc = readRegTime(F, CondReg, Slot);
    if (Tc > T)
      T = Tc;
    NewT[Slot] = T + Lat;
  }

  if (!Coalesce) {
    CdMerge.push_back(MergeBlock);
    CdPushBlock.push_back(PushBlock);
    CdCells.resize(CdCells.size() + Cfg.NumLevels);
  }
  size_t Base = (CdMerge.size() - 1) * Cfg.NumLevels;
  Time *LM = LevelMaxTimes.data();
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    CdCells[Base + Slot].Tag = CurInstance[Slot];
    CdCells[Base + Slot].T = NewT[Slot];
    CdNow[Slot] = NewT[Slot]; // Fresh tags: the contribution is NewT.
    if (NewT[Slot] > LM[Slot])
      LM[Slot] = NewT[Slot];
  }
  // Slots beyond the active depth keep stale tags and read as 0 (and their
  // CdNow entries are already 0 by invariant).
  CdTop = &CdCells[Base]; // resize() above may have moved the storage.
}

void KremlinRuntime::onOp(Opcode Op, ValueId Dst, ValueId A, ValueId B,
                          bool BreakDepA) {
  unsigned Lat = LatOf[static_cast<size_t>(Op)];
  addWork(Lat);
  ++Stats.DynInstructions;
  if (LiveFrames == 0)
    return;
  const unsigned NL = Cfg.NumLevels;
  const unsigned Slots = SlotsActive;
  Time *FC = FrameCells;

  // Constant materializations only exist because the IR spells immediates
  // out as instructions; in LLVM they are operands with no availability
  // time. Treat them (and address-base constants) as available at time 0,
  // independent of control dependences — otherwise a loop's control chain
  // would leak into every literal used inside the loop.
  if (Op == Opcode::ConstInt || Op == Opcode::ConstFloat ||
      Op == Opcode::GlobalAddr || Op == Opcode::FrameAddr) {
    // "Available at time 0" and "unwritten row" are indistinguishable to
    // every reader, so the row write collapses to an O(1) invalidation:
    // watermark 0 predates every instance id.
    FrameRowW[Dst] = 0;
    return;
  }

  // Operand watermarks resolved before the destination's is bumped (Dst
  // may alias A or B); the slot loop is then straight-line maxing over
  // contiguous times. Unused operands point at an all-zero row under a
  // zero watermark, keeping the loop free of null checks. Induction/
  // reduction updates (BreakDepA) ignore both the old value and the
  // control dependence: the iteration-existence test of a counted loop is
  // exactly the easy-to-break dependence the rule removes.
  uint64_t *RW = FrameRowW;
  const Time *Cd = BreakDepA ? ZeroTimes : CdNow;
  bool UseA = A != NoValue && !BreakDepA;
  const uint64_t WA = UseA ? RW[A] : 0;
  const Time *TA = UseA ? FC + static_cast<size_t>(A) * NL : ZeroTimes;
  const uint64_t WB = B != NoValue ? RW[B] : 0;
  const Time *TB =
      B != NoValue ? FC + static_cast<size_t>(B) * NL : ZeroTimes;
  Time *TDst = nullptr;
  if (Dst != NoValue) {
    TDst = FC + static_cast<size_t>(Dst) * NL;
    RW[Dst] = NextInstance;
  }
  const uint64_t *Inst = CurInstance.data();
  Time *LM = LevelMaxTimes.data();
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    uint64_t Id = Inst[Slot];
    Time T = Cd[Slot];
    Time Ta = Id <= WA ? TA[Slot] : 0;
    T = Ta > T ? Ta : T;
    Time Tb = Id <= WB ? TB[Slot] : 0;
    T = Tb > T ? Tb : T;
    T += Lat;
    if (TDst)
      TDst[Slot] = T;
    LM[Slot] = T > LM[Slot] ? T : LM[Slot];
  }
}

void KremlinRuntime::onLoad(ValueId Dst, ValueId AddrReg, uint64_t Addr) {
  unsigned Lat = LatOf[static_cast<size_t>(Opcode::Load)];
  addWork(Lat);
  ++Stats.DynInstructions;
  ++Stats.Loads;
  const unsigned Slots = SlotsActive;
  if (Slots == 0)
    return;
  const unsigned NL = Cfg.NumLevels;
  Time *FC = FrameCells;
  // One page-table lookup shadows the word for every level; the per-slot
  // tally matches the per-slot read() calls of the pre-paging runtime.
  Memory.noteReads(Slots);
  const ShadowCell *MC = Memory.wordCells(Addr);
  const Time *Cd = CdNow;
  uint64_t *RW = FrameRowW;
  const uint64_t WAddr = RW[AddrReg];
  const Time *TAddr = FC + static_cast<size_t>(AddrReg) * NL;
  Time *TDst = FC + static_cast<size_t>(Dst) * NL;
  RW[Dst] = NextInstance;
  const uint64_t *Inst = CurInstance.data();
  Time *LM = LevelMaxTimes.data();
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    uint64_t Id = Inst[Slot];
    Time T = Cd[Slot];
    Time Ta = Id <= WAddr ? TAddr[Slot] : 0;
    T = Ta > T ? Ta : T;
    if (MC && MC[Slot].Tag == Id && MC[Slot].T > T)
      T = MC[Slot].T;
    T += Lat;
    TDst[Slot] = T;
    LM[Slot] = T > LM[Slot] ? T : LM[Slot];
  }
}

void KremlinRuntime::onStore(ValueId ValReg, ValueId AddrReg, uint64_t Addr) {
  unsigned Lat = LatOf[static_cast<size_t>(Opcode::Store)];
  addWork(Lat);
  ++Stats.DynInstructions;
  ++Stats.Stores;
  const unsigned Slots = SlotsActive;
  if (Slots == 0)
    return;
  const unsigned NL = Cfg.NumLevels;
  Time *FC = FrameCells;
  Memory.noteWrites(Slots);
  // Allocate the page once for all slots; nullptr (budget trip / injected
  // fault) drops the shadow writes exactly like per-slot write() did.
  ShadowCell *MC = Memory.wordCellsForWrite(Addr);
  const Time *Cd = CdNow;
  const uint64_t *RW = FrameRowW;
  const uint64_t WVal = RW[ValReg];
  const Time *TVal = FC + static_cast<size_t>(ValReg) * NL;
  const uint64_t WAddr = RW[AddrReg];
  const Time *TAddr = FC + static_cast<size_t>(AddrReg) * NL;
  const uint64_t *Inst = CurInstance.data();
  Time *LM = LevelMaxTimes.data();
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    uint64_t Id = Inst[Slot];
    Time T = Cd[Slot];
    Time Tv = Id <= WVal ? TVal[Slot] : 0;
    T = Tv > T ? Tv : T;
    Time Ta = Id <= WAddr ? TAddr[Slot] : 0;
    T = Ta > T ? Ta : T;
    T += Lat;
    // True (flow) dependences only: the previous time at this address is
    // deliberately ignored — anti and output dependences are false
    // dependences that an ideal parallelization removes (§4.1).
    if (MC) {
      MC[Slot].Tag = Id;
      MC[Slot].T = T;
    }
    LM[Slot] = T > LM[Slot] ? T : LM[Slot];
  }
}

#if defined(__GNUC__) || defined(__clang__)
// The batch loop is the profiled execution's hot spine: inline every hook
// into it so the per-event cost is the switch dispatch plus the (cached)
// hook body, with no call overhead.
__attribute__((flatten))
#endif
void KremlinRuntime::consumeBatch(const ProfEvent *Ev, size_t N) {
  for (size_t I = 0; I < N; ++I) {
    const ProfEvent &E = Ev[I];
    switch (static_cast<EvKind>(E.Kind)) {
    case EvKind::Op:
      onOp(static_cast<Opcode>(E.Opc), E.A, E.B, E.C, (E.Flags & 1) != 0);
      break;
    case EvKind::Load:
      onLoad(E.A, E.B, E.Addr);
      break;
    case EvKind::Store:
      onStore(E.A, E.B, E.Addr);
      break;
    case EvKind::CondBranch:
      onCondBranch(E.A, E.B, E.C);
      break;
    case EvKind::BlockEntry:
      popControlDepsAtBlock(E.A);
      break;
    case EvKind::RegionEnter:
      enterRegion(E.A);
      break;
    case EvKind::RegionExit:
      exitRegion(E.A);
      break;
    case EvKind::PushFrame:
      pushFrame(E.A);
      break;
    case EvKind::PopFrame:
      popFrame();
      break;
    case EvKind::CopyParam:
      copyParamFromCaller(E.A, E.B);
      break;
    case EvKind::CopyReturn:
      copyReturnToCaller(E.A, E.B);
      break;
    case EvKind::ReleaseRange:
      Memory.releaseRange(E.Addr, E.words());
      break;
    }
  }
}
