//===- rt/KremlinRuntime.cpp ----------------------------------------------===//

#include "rt/KremlinRuntime.h"

#include "support/StringUtils.h"

#include <algorithm>

using namespace kremlin;

KremlinRuntime::KremlinRuntime(const KremlinConfig &Cfg,
                               RegionSummarySink &Sink)
    : Cfg(Cfg), Sink(Sink),
      Memory(Cfg.NumLevels, Cfg.SegmentWords, Cfg.MaxShadowBytes) {
  assert(Cfg.NumLevels >= 1 && Cfg.NumLevels <= MaxTrackedLevels &&
         "NumLevels outside the supported window");
  CurInstance.assign(Cfg.NumLevels, 0);
}

void KremlinRuntime::enterRegion(RegionId R) {
  unsigned Level = depth();
  // Depth guardrail: record the error but still push the region so every
  // exitRegion stays matched while the interpreter unwinds to its next
  // failure poll.
  if (Cfg.MaxRegionDepth != 0 && Level >= Cfg.MaxRegionDepth && Err.ok())
    Err = Status::error(
        ErrorCode::ResourceExhausted,
        formatString("region nesting depth cap (%u) exceeded",
                     Cfg.MaxRegionDepth));
  uint64_t Instance = ++NextInstance;
  if (Level >= Cfg.MinLevel && Level - Cfg.MinLevel < Cfg.NumLevels) {
    // Retag the slot: every shadow cell written by older same-depth regions
    // now reads as time 0.
    CurInstance[Level - Cfg.MinLevel] = Instance;
    ++Stats.LevelRetags;
  }
  ActiveRegion A;
  A.Static = R;
  A.Instance = Instance;
  Regions.push_back(std::move(A));
  ++Stats.DynRegionEntries;
}

void KremlinRuntime::exitRegion(RegionId R) {
  assert(!Regions.empty() && "region exit with empty region stack");
  ActiveRegion Top = std::move(Regions.back());
  Regions.pop_back();
  assert(Top.Static == R && "mismatched region exit");
  (void)R;

  unsigned Level = depth(); // Level the popped region occupied.
  bool Tracked =
      Level >= Cfg.MinLevel && Level - Cfg.MinLevel < Cfg.NumLevels;
  // Outside the tracked window we never measured availability times; fall
  // back to the serial assumption cp == work so summaries stay well-formed.
  Time Cp = Tracked ? Top.MaxTime : Top.Work;
  // Work is a trivial upper bound... cp can exceed work only through
  // control-dependence times carried from sibling iterations; clamp.
  if (Cp > Top.Work)
    Cp = Top.Work;

  std::sort(Top.Children.begin(), Top.Children.end());
  DynRegionSummary S;
  S.Static = Top.Static;
  S.Work = Top.Work;
  S.Cp = Cp;
  S.Children = std::move(Top.Children);
  SummaryChar C = Sink.intern(std::move(S));

  if (Regions.empty()) {
    Sink.onRootExit(C);
    return;
  }
  ActiveRegion &Parent = Regions.back();
  Parent.Work += Top.Work;
  // Linear scan: regions have few distinct child characters in practice
  // (that is exactly why the dictionary compression works).
  for (auto &[Char, Count] : Parent.Children) {
    if (Char == C) {
      ++Count;
      return;
    }
  }
  Parent.Children.emplace_back(C, 1);
}

void KremlinRuntime::pushFrame(unsigned NumRegs) {
  Frame F;
  F.NumRegs = NumRegs;
  F.Cells.assign(static_cast<size_t>(NumRegs) * Cfg.NumLevels, ShadowCell());
  F.CdBase = CdMerge.size();
  Frames.push_back(std::move(F));
}

void KremlinRuntime::popFrame() {
  assert(!Frames.empty() && "popFrame with no frames");
  // Abandon control dependences opened in this frame (early returns).
  CdMerge.resize(Frames.back().CdBase);
  CdPushBlock.resize(Frames.back().CdBase);
  CdCells.resize(CdMerge.size() * Cfg.NumLevels);
  Frames.pop_back();
}

void KremlinRuntime::copyParamFromCaller(ValueId DstParam,
                                         ValueId SrcArgInCaller) {
  assert(Frames.size() >= 2 && "no caller frame");
  Frame &Callee = Frames[Frames.size() - 1];
  Frame &Caller = Frames[Frames.size() - 2];
  for (unsigned Slot = 0; Slot < Cfg.NumLevels; ++Slot)
    Callee.Cells[static_cast<size_t>(DstParam) * Cfg.NumLevels + Slot] =
        Caller.Cells[static_cast<size_t>(SrcArgInCaller) * Cfg.NumLevels +
                     Slot];
}

void KremlinRuntime::copyReturnToCaller(ValueId DstInCaller,
                                        ValueId SrcInCallee) {
  assert(Frames.size() >= 2 && "no caller frame");
  Frame &Callee = Frames[Frames.size() - 1];
  Frame &Caller = Frames[Frames.size() - 2];
  for (unsigned Slot = 0; Slot < Cfg.NumLevels; ++Slot)
    Caller.Cells[static_cast<size_t>(DstInCaller) * Cfg.NumLevels + Slot] =
        Callee.Cells[static_cast<size_t>(SrcInCallee) * Cfg.NumLevels + Slot];
}

void KremlinRuntime::onCondBranch(ValueId CondReg, uint32_t MergeBlock,
                                  uint32_t PushBlock) {
  unsigned Lat = Cfg.Latency.latencyFor(Opcode::CondBr);
  addWork(Lat);
  ++Stats.DynInstructions;
  Frame &F = curFrame();
  unsigned Slots = activeSlots();

  // Branch availability per slot: max(enclosing control dep, condition) +
  // latency. When the top entry already targets the same merge block (a
  // loop back edge re-branching every iteration, or an if re-entered in a
  // new iteration) the new branch instance REPLACES it: each dynamic branch
  // is its own control dependence, so a counted loop whose condition only
  // reads broken induction chains does not serialize its iterations, while
  // a data-dependent condition (while (err > tol)) still does — its time
  // flows in through CondReg. The enclosing dependence is the entry below
  // the one being replaced.
  bool Coalesce = CdMerge.size() > F.CdBase &&
                  CdMerge.back() == MergeBlock &&
                  CdPushBlock.back() == PushBlock;
  size_t OuterIdx = CdMerge.size() - (Coalesce ? 2 : 1); // May underflow...
  bool HasOuter = CdMerge.size() >= (Coalesce ? 2u : 1u) &&
                  OuterIdx + 1 > F.CdBase; // ...guarded here.
  Time NewT[MaxTrackedLevels];
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    Time T = 0;
    if (HasOuter) {
      const ShadowCell &Cell = CdCells[OuterIdx * Cfg.NumLevels + Slot];
      if (Cell.Tag == CurInstance[Slot])
        T = Cell.T;
    }
    Time Tc = readRegTime(F, CondReg, Slot);
    if (Tc > T)
      T = Tc;
    NewT[Slot] = T + Lat;
  }

  if (!Coalesce) {
    CdMerge.push_back(MergeBlock);
    CdPushBlock.push_back(PushBlock);
    CdCells.resize(CdCells.size() + Cfg.NumLevels);
  }
  size_t Base = (CdMerge.size() - 1) * Cfg.NumLevels;
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    CdCells[Base + Slot].Tag = CurInstance[Slot];
    CdCells[Base + Slot].T = NewT[Slot];
    noteTime(Slot, NewT[Slot]);
  }
  // Slots beyond the active depth keep stale tags and read as 0.
}

void KremlinRuntime::onOp(Opcode Op, ValueId Dst, ValueId A, ValueId B,
                          bool BreakDepA) {
  unsigned Lat = Cfg.Latency.latencyFor(Op);
  addWork(Lat);
  ++Stats.DynInstructions;
  if (Frames.empty())
    return;
  Frame &F = curFrame();
  unsigned Slots = activeSlots();

  // Constant materializations only exist because the IR spells immediates
  // out as instructions; in LLVM they are operands with no availability
  // time. Treat them (and address-base constants) as available at time 0,
  // independent of control dependences — otherwise a loop's control chain
  // would leak into every literal used inside the loop.
  if (Op == Opcode::ConstInt || Op == Opcode::ConstFloat ||
      Op == Opcode::GlobalAddr || Op == Opcode::FrameAddr) {
    for (unsigned Slot = 0; Slot < Slots; ++Slot)
      writeRegTime(F, Dst, Slot, 0);
    return;
  }

  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    // Induction/reduction updates (BreakDepA) ignore both the old value and
    // the control dependence: the iteration-existence test of a counted
    // loop is exactly the easy-to-break dependence the rule removes.
    Time T = BreakDepA ? 0 : controlDepTime(Slot);
    if (A != NoValue && !BreakDepA) {
      Time Ta = readRegTime(F, A, Slot);
      if (Ta > T)
        T = Ta;
    }
    if (B != NoValue) {
      Time Tb = readRegTime(F, B, Slot);
      if (Tb > T)
        T = Tb;
    }
    T += Lat;
    if (Dst != NoValue)
      writeRegTime(F, Dst, Slot, T);
    noteTime(Slot, T);
  }
}

void KremlinRuntime::onLoad(ValueId Dst, ValueId AddrReg, uint64_t Addr) {
  unsigned Lat = Cfg.Latency.latencyFor(Opcode::Load);
  addWork(Lat);
  ++Stats.DynInstructions;
  ++Stats.Loads;
  Frame &F = curFrame();
  unsigned Slots = activeSlots();
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    Time T = controlDepTime(Slot);
    Time Ta = readRegTime(F, AddrReg, Slot);
    if (Ta > T)
      T = Ta;
    Time Tm = Memory.read(Addr, Slot, CurInstance[Slot]);
    if (Tm > T)
      T = Tm;
    T += Lat;
    writeRegTime(F, Dst, Slot, T);
    noteTime(Slot, T);
  }
}

void KremlinRuntime::onStore(ValueId ValReg, ValueId AddrReg, uint64_t Addr) {
  unsigned Lat = Cfg.Latency.latencyFor(Opcode::Store);
  addWork(Lat);
  ++Stats.DynInstructions;
  ++Stats.Stores;
  Frame &F = curFrame();
  unsigned Slots = activeSlots();
  for (unsigned Slot = 0; Slot < Slots; ++Slot) {
    Time T = controlDepTime(Slot);
    Time Tv = readRegTime(F, ValReg, Slot);
    if (Tv > T)
      T = Tv;
    Time Ta = readRegTime(F, AddrReg, Slot);
    if (Ta > T)
      T = Ta;
    T += Lat;
    // True (flow) dependences only: the previous time at this address is
    // deliberately ignored — anti and output dependences are false
    // dependences that an ideal parallelization removes (§4.1).
    Memory.write(Addr, Slot, CurInstance[Slot], T);
    noteTime(Slot, T);
  }
}
