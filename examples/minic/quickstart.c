// quickstart.c - A tiny MiniC program for trying the kremlin pipeline.
//
// Two array passes: `scale` is a textbook DOALL (every iteration is
// independent), while `fold` is a serial reduction chain. Profile it:
//
//   kremlin examples/minic/quickstart.c
//   kremlin examples/minic/quickstart.c --trace-out=trace.json \
//                                       --metrics-out=metrics.json
//   kremlin stats examples/minic/quickstart.c
//
// The plan should recommend parallelizing the scale loop and leave the
// fold loop alone; the trace shows one span per pipeline stage.

int data[512];
int scaled[512];

void scale() {
  for (int i = 0; i < 512; i = i + 1) {
    int x = data[i] * 3;
    x = x + x / 7;
    scaled[i] = x + 1;
  }
}

int fold() {
  int acc = 0;
  for (int i = 0; i < 512; i = i + 1) {
    acc = acc + scaled[i] % 97;
  }
  return acc;
}

int main() {
  for (int i = 0; i < 512; i = i + 1) {
    data[i] = i * i % 251;
  }
  scale();
  return fold();
}
