// recursion_demo.c - Interprocedural lint demo (Kremlin's 07.recursion).
//
//   kremlin lint examples/minic/recursion_demo.c
//
// `fib` is recursive, so the call graph has a cycle and its mod/ref
// summary is saturated over the SCC -- but fib touches no caller-visible
// memory, so it summarizes as pure. The `tabulate` loop therefore gets a
// real verdict (doall) even though every iteration calls fib: the only
// memory effect inside the loop is the induction-indexed store to
// fib_of[]. `scale_by_last` also calls fib, but the callee's purity again
// keeps the loop provably parallel. Compare with the dynamic view:
//
//   kremlin examples/minic/recursion_demo.c
//
// which measures the same loops (recursion makes each iteration's work
// grow, but HCPA still sees the iterations as independent).

int fib_of[24];
int scaled[24];

int fib(int n) {
  if (n < 2) {
    return n;
  }
  return fib(n - 1) + fib(n - 2);
}

void tabulate() {
  for (int i = 0; i < 24; i = i + 1) {
    fib_of[i] = fib(i);
  }
}

void scale_by_last() {
  for (int i = 0; i < 24; i = i + 1) {
    scaled[i] = fib_of[i] * fib(8);
  }
}

int main() {
  tabulate();
  scale_by_last();
  return fib_of[23] - scaled[23];
}
