// lint_demo.c - Companion input for `kremlin lint`.
//
//   kremlin lint examples/minic/lint_demo.c
//
// The `smooth` loop carries a real flow dependence: iteration i writes
// acc[i + 1], which iteration i + 1 reads as acc[i]. The subscript test
// proves a distance-1 dependence, so lint reports the loop as serial and
// cites both source lines. The `fill` loop touches a distinct cell per
// iteration and is provably DOALL. Compare with the dynamic view:
//
//   kremlin examples/minic/lint_demo.c
//
// which measures the same loops on one input instead of proving them.

int acc[256];
int out[256];

void smooth() {
  for (int i = 0; i < 255; i = i + 1) {
    acc[i + 1] = acc[i] + 3;
  }
}

void fill() {
  for (int i = 0; i < 256; i = i + 1) {
    out[i] = i * 5 + 1;
  }
}

int main() {
  acc[0] = 7;
  smooth();
  fill();
  return acc[255] + out[17];
}
