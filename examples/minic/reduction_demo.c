// reduction_demo.c - Reduction recognition demo (Kremlin's 02.reduction).
//
//   kremlin lint examples/minic/reduction_demo.c
//
// The `init` loop is a plain doall. The `total` loop carries a real flow
// dependence through `sum`, but it is a reduction recurrence
// (sum = sum + data[i]), so lint reports it as `reduction` --
// parallelizable with a reduction(+) clause. The `largest` loop is the
// if-guarded max idiom: it too reports `reduction`, with op `max`. Note
// that HCPA's runtime rule breaks only +/* reductions, so the max loop
// *measures* serial on any input while still being statically
// parallelizable -- exactly the input-independence gap lint exists to
// close. Compare with the dynamic view:
//
//   kremlin examples/minic/reduction_demo.c


int data[512];

int init() {
  for (int i = 0; i < 512; i = i + 1) {
    data[i] = (i * 37 + 11) % 97;
  }
  return data[0];
}

int total() {
  int sum = 0;
  for (int i = 0; i < 512; i = i + 1) {
    sum = sum + data[i];
  }
  return sum;
}

int largest() {
  int best = 0;
  for (int i = 0; i < 512; i = i + 1) {
    if (data[i] > best) {
      best = data[i];
    }
  }
  return best;
}

int main() {
  init();
  return total() + largest();
}
