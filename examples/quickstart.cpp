//===- examples/quickstart.cpp - Kremlin in 60 lines ----------------------===//
//
// The minimal end-to-end use of the library: compile a MiniC program,
// profile it under hierarchical critical path analysis, and print the
// ordered parallelism plan — the equivalent of the paper's three-command
// session (Figure 3):
//
//   $> make CC=kremlin-cc
//   $> ./program input
//   $> kremlin program --personality=openmp
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "driver/KremlinDriver.h"

#include <cstdio>

using namespace kremlin;

int main() {
  // A serial program with three loops: a hot parallel one, a reduction,
  // and a genuinely serial recurrence.
  const char *Source = R"(
    int data[512];
    int main() {
      // Hot, fully parallel: each iteration touches its own element.
      for (int i = 0; i < 512; i = i + 1) {
        int x = data[i] + i;
        x = x * 3 + 1;
        x = x + x / 7;
        x = x * 2 - x / 5;
        data[i] = x;
      }
      // Reduction: breakable dependence on s.
      int s = 0;
      for (int i = 0; i < 512; i = i + 1) {
        s = s + data[i] % 97;
      }
      // Serial: c genuinely feeds its own next value.
      int c = 3;
      for (int i = 0; i < 64; i = i + 1) {
        c = c * 3 + c / (c % 7 + 2);
      }
      return (s + c) % 100;
    }
  )";

  // One call runs the whole Figure 4 pipeline: parse -> instrument ->
  // profiled execution -> compressed profile -> planner.
  KremlinDriver Driver;
  DriverResult Result = Driver.runOnSource(Source, "quickstart.c");
  if (!Result.succeeded()) {
    for (const std::string &E : Result.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  std::printf("program executed: exit value %lld, %llu instructions\n\n",
              static_cast<long long>(Result.Exec.ExitValue),
              static_cast<unsigned long long>(Result.Exec.DynInstructions));

  // The ordered plan: which regions to parallelize first.
  std::fputs(printPlan(*Result.M, Result.ThePlan).c_str(), stdout);

  std::printf("\nPer-region profile (self-parallelism vs classic CPA):\n");
  std::fputs(Result.Profile->toText().c_str(), stdout);
  return 0;
}
