//===- examples/feature_tracking.cpp - the paper's running example --------===//
//
// Reproduces the paper's two motivating figures on the SD-VBS feature
// tracking workload:
//
//  - Figure 2: in the fillFeatures nest, only the innermost k loop is
//    parallel; classic CPA reports parallelism in every enclosing loop
//    (the localization failure), while HCPA's self-parallelism pins it to
//    the right level.
//  - Figure 3: the Kremlin UI — an ordered plan whose top entries are the
//    imageBlur loops, with the low-self-parallelism getInterpPatch loop
//    still ranked third by coverage.
//
// Build & run:  ./build/examples/feature_tracking
//
//===----------------------------------------------------------------------===//

#include "driver/KremlinDriver.h"
#include "suite/PaperSuite.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace kremlin;

int main() {
  KremlinDriver Driver;
  DriverResult Result = Driver.runOnSource(trackingSource(), "tracking.c");
  if (!Result.succeeded()) {
    for (const std::string &E : Result.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  std::printf("== Figure 3: the ordered parallelism plan ==\n\n");
  std::fputs(printPlan(*Result.M, Result.ThePlan, 8).c_str(), stdout);

  // Figure 2: find the fillFeatures nest and contrast total-parallelism
  // (classic CPA) with self-parallelism (HCPA) at each level.
  std::printf("\n== Figure 2: localizing parallelism in fillFeatures ==\n\n");
  std::printf("%-28s %14s %14s\n", "region", "total-par (CPA)",
              "self-par (HCPA)");
  for (const RegionProfileEntry &E : Result.Profile->entries()) {
    const StaticRegion &R = Result.M->Regions[E.Id];
    if (!E.Executed || R.Kind != RegionKind::Loop)
      continue;
    if (Result.M->Functions[R.Func].Name != "fillFeatures")
      continue;
    std::printf("%-28s %14.1f %14.1f\n", R.sourceSpan().c_str(),
                E.TotalParallelism, E.SelfParallelism);
  }
  std::printf("\nClassic CPA sees parallelism in the outer i/j loops too "
              "(it leaks up from the k loop);\nself-parallelism shows only "
              "the innermost k loop is actually parallel.\n");
  return 0;
}
