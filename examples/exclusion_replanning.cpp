//===- examples/exclusion_replanning.cpp - the exclusion-list workflow ----===//
//
// The paper's §3 usage loop: "In the event that the user is unable or
// unwilling to exploit the parallelism in a region, they can rerun the
// planner with a list of excluded regions and receive an updated plan."
// Re-planning needs no re-profiling: the planner operates on the already
// compressed profile.
//
// Build & run:  ./build/examples/exclusion_replanning
//
//===----------------------------------------------------------------------===//

#include "driver/KremlinDriver.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace kremlin;

int main() {
  // A nest where the recommended coarse outer loop might be too hard to
  // refactor (needs privatization); the user excludes it and gets the
  // inner loops instead.
  const char *Source = R"(
    int grid[4096];
    int row[64];
    int main() {
      for (int t = 0; t < 2; t = t + 1) {
        for (int j = 0; j < 64; j = j + 1) {
          int y = row[j] + t;
          y = y * 3 + j;
          y = y + y / 7;
          y = y * 2 + 1;
          y = y + y % 13;
          y = y * 3 + t;
          y = y + y / 5;
          y = y * 2 + 3;
          y = y + y % 7;
          row[j] = y;
          for (int i = 0; i < 64; i = i + 1) {
            int x = grid[j * 64 + i] + y;
            x = x * 3 + i;
            x = x + x / 7;
            x = x * 2 - x / 5;
            grid[j * 64 + i] = x;
          }
        }
      }
      return grid[100] % 100;
    }
  )";

  KremlinDriver Driver;
  DriverResult Result = Driver.runOnSource(Source, "nest.c");
  if (!Result.succeeded()) {
    for (const std::string &E : Result.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }

  std::printf("== Initial plan ==\n\n");
  std::fputs(printPlan(*Result.M, Result.ThePlan).c_str(), stdout);
  if (Result.ThePlan.Items.empty())
    return 1;

  // The user rejects the top recommendation.
  RegionId Rejected = Result.ThePlan.Items[0].Region;
  std::printf("\nUser: \"region %u (%s) needs privatization I can't do — "
              "exclude it.\"\n\n",
              Rejected, Result.M->Regions[Rejected].sourceSpan().c_str());

  PlannerOptions Opts = Driver.options().Planner;
  Opts.Excluded.insert(Rejected);
  Plan Replanned = Driver.replan(Result, Opts);

  std::printf("== Replanned (no re-profiling needed) ==\n\n");
  std::fputs(printPlan(*Result.M, Replanned).c_str(), stdout);
  std::printf("\nThe planner fell back to the next-best non-nested "
              "regions.\n");
  return 0;
}
