//===- examples/planner_personalities.cpp - one profile, four planners ----===//
//
// Shows planner personalities (paper §5) on a single profile: the same
// NPB-style benchmark planned by the OpenMP personality (no nesting, DP
// selection, paper thresholds), the Cilk++ personality (nesting-friendly,
// lower thresholds), and the two Figure 9 baselines (gprof-style work
// list, work + self-parallelism filter). Each plan is then evaluated on
// the 32-core machine model.
//
// Build & run:  ./build/examples/planner_personalities
//
//===----------------------------------------------------------------------===//

#include "driver/KremlinDriver.h"
#include "machine/ExecutionSimulator.h"
#include "suite/PaperSuite.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cstdio>

using namespace kremlin;

int main() {
  GeneratedBenchmark GB = generatePaperBenchmark("ft");
  KremlinDriver Driver;
  DriverResult Result = Driver.runOnSource(GB.Source, "ft.c");
  if (!Result.succeeded()) {
    for (const std::string &E : Result.Errors)
      std::fprintf(stderr, "error: %s\n", E.c_str());
    return 1;
  }
  ExecutionSimulator Sim(*Result.Profile);

  std::printf("benchmark 'ft': %u candidate regions, %llu units of work\n\n",
              Result.M->numCandidateRegions(),
              static_cast<unsigned long long>(
                  Result.Profile->programWork()));

  TablePrinter Table;
  Table.setHeader({"personality", "plan size", "est. speedup",
                   "simulated x", "best cores"});
  for (const char *Name : {"openmp", "cilk", "selfp", "work"}) {
    Plan P = Driver.replan(Result, Driver.options().Planner, Name);
    SimOutcome Out = Sim.evaluatePlan(P.regionIds());
    Table.addRow({Name, formatString("%zu", P.Items.size()),
                  formatFactor(P.EstProgramSpeedup),
                  formatFactor(Out.speedup()),
                  formatString("%u", Out.BestCores)});
  }
  std::fputs(Table.render().c_str(), stdout);

  std::printf("\nThe gprof-style 'work' list is long and full of serial "
              "regions; adding the\nself-parallelism filter shrinks it; the "
              "full OpenMP personality leaves a\nshort, machine-aware plan "
              "(Figure 9's three bars).\n\nOpenMP plan:\n");
  std::fputs(printPlan(*Result.M, Result.ThePlan, 8).c_str(), stdout);
  return 0;
}
