//===- bench/bench_fig6a_plan_size.cpp - Figure 6(a) ----------------------===//
//
// Regenerates Figure 6(a): plan-size comparison between the third-party
// MANUAL parallelization and Kremlin's plan, per benchmark — MANUAL size,
// Kremlin size, overlap, and the MANUAL/Kremlin reduction factor. Paper
// values are printed alongside for comparison.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace kremlin;
using namespace kremlin::bench;

int main(int argc, char **argv) {
  BenchReporter Reporter("fig6a_plan_size", argc, argv);
  std::printf("Figure 6(a): plan size comparison (measured vs paper)\n\n");
  TablePrinter Table;
  Table.setHeader({"Benchmark", "MANUAL", "Kremlin", "Overlap", "Reduction",
                   "paper:M", "paper:K", "paper:O"});

  unsigned TotalManual = 0, TotalKremlin = 0, TotalOverlap = 0;
  unsigned PaperManual = 0, PaperKremlin = 0, PaperOverlap = 0;
  for (const std::string &Name : paperBenchmarkNames()) {
    BenchRun Run = runPaperBenchmark(Name);
    std::set<RegionId> Manual(Run.ManualPlan.begin(), Run.ManualPlan.end());
    std::set<RegionId> Kremlin;
    for (const PlanItem &I : Run.kremlinPlan().Items)
      Kremlin.insert(I.Region);
    unsigned Overlap = 0;
    for (RegionId R : Kremlin)
      Overlap += Manual.count(R);

    PaperFacts Facts = paperFacts(Name);
    TotalManual += Manual.size();
    TotalKremlin += Kremlin.size();
    TotalOverlap += Overlap;
    PaperManual += Facts.ManualPlanSize;
    PaperKremlin += Facts.KremlinPlanSize;
    PaperOverlap += Facts.Overlap;

    double Reduction = Kremlin.empty()
                           ? 0.0
                           : static_cast<double>(Manual.size()) /
                                 static_cast<double>(Kremlin.size());
    Table.addRow({Name, formatString("%zu", Manual.size()),
                  formatString("%zu", Kremlin.size()),
                  formatString("%u", Overlap), formatFactor(Reduction),
                  formatString("%u", Facts.ManualPlanSize),
                  formatString("%u", Facts.KremlinPlanSize),
                  formatString("%u", Facts.Overlap)});
    Reporter.metric(Name + ".manual_plan_size", Manual.size());
    Reporter.metric(Name + ".plan_size", Kremlin.size());
    Reporter.metric(Name + ".plan_overlap", Overlap);
  }
  Table.addSeparator();
  Table.addRow({"Overall", formatString("%u", TotalManual),
                formatString("%u", TotalKremlin),
                formatString("%u", TotalOverlap),
                formatFactor(static_cast<double>(TotalManual) /
                             std::max(1u, TotalKremlin)),
                formatString("%u", PaperManual),
                formatString("%u", PaperKremlin),
                formatString("%u", PaperOverlap)});
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper overall: MANUAL 211, Kremlin 134, overlap 116, "
              "reduction 1.57x\n");
  Reporter.metric("overall.manual_plan_size", TotalManual);
  Reporter.metric("overall.plan_size", TotalKremlin);
  Reporter.metric("overall.plan_overlap", TotalOverlap);
  return 0;
}
