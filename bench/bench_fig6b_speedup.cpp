//===- bench/bench_fig6b_speedup.cpp - Figure 6(b) ------------------------===//
//
// Regenerates Figure 6(b): per-benchmark speedup of the Kremlin-planned
// parallelization relative to the third-party MANUAL version, with
// absolute speedups, evaluated on the machine model at the best core
// configuration in {1,2,4,8,16,32} (the paper's §6.1 protocol).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <cmath>
#include <cstdio>

using namespace kremlin;
using namespace kremlin::bench;

int main(int argc, char **argv) {
  BenchReporter Reporter("fig6b_speedup", argc, argv);
  std::printf("Figure 6(b): Kremlin vs MANUAL speedup (measured vs paper)\n\n");
  TablePrinter Table;
  Table.setHeader({"Benchmark", "Kremlin x", "cores", "MANUAL x", "cores",
                   "Relative", "paper:Rel"});

  double GeoMean = 1.0;
  unsigned Count = 0;
  for (const std::string &Name : paperBenchmarkNames()) {
    BenchRun Run = runPaperBenchmark(Name);
    ExecutionSimulator Sim(Run.profile());

    SimOutcome Kremlin = Sim.evaluatePlan(Run.kremlinPlan().regionIds());
    SimOutcome Manual = Sim.evaluatePlan(Run.ManualPlan);
    double Relative = Kremlin.speedup() / Manual.speedup();
    GeoMean *= Relative;
    ++Count;

    Reporter.metric(Name + ".sim_speedup", Kremlin.speedup());
    Reporter.metric(Name + ".manual_sim_speedup", Manual.speedup());
    Reporter.metric(Name + ".relative_speedup", Relative);

    PaperFacts Facts = paperFacts(Name);
    Table.addRow({Name, formatFactor(Kremlin.speedup()),
                  formatString("%u", Kremlin.BestCores),
                  formatFactor(Manual.speedup()),
                  formatString("%u", Manual.BestCores),
                  formatFactor(Relative),
                  formatFactor(Facts.RelativeSpeedup)});
  }
  GeoMean = std::pow(GeoMean, 1.0 / Count);
  Reporter.metric("overall.relative_speedup_geomean", GeoMean);
  Table.addSeparator();
  Table.addRow({"geomean", "", "", "", "", formatFactor(GeoMean), ""});
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper shape: sp 1.85x and is 1.46x in Kremlin's favor; "
              "others within ~3.8%% of MANUAL; absolute speedups between "
              "1.5x and 25.89x\n");
  return 0;
}
