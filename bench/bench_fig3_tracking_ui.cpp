//===- bench/bench_fig3_tracking_ui.cpp - Figure 3 ------------------------===//
//
// Regenerates Figure 3: the Kremlin user interface on the SD-VBS feature
// tracking benchmark. The paper's session:
//
//   $> make CC=kremlin-cc
//   $> ./tracking data
//   $> kremlin tracking --personality=openmp
//   File (lines)              Self-P   Cov (%)
//   1 imageBlur.c (49-58)      145.3       9.7
//   2 imageBlur.c (37-45)      145.3       8.7
//   3 getInterpPatch.c (26-35)  25.3      8.86
//   4 calcSobel_dX.c (59-68)   126.2       8.1
//   5 calcSobel_dX.c (46-55)   126.2       8.1
//
// Shape to reproduce: the two blur loops lead, the low-Self-P (tens, not
// hundreds) interpolation loop still ranks third on coverage, the two
// Sobel loops follow, and fillFeatures' serial outer nest stays out of the
// top ranks while its innermost k loop is recognized as parallel (Fig. 2).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include <cstdio>

using namespace kremlin;
using namespace kremlin::bench;

int main(int argc, char **argv) {
  BenchReporter Reporter("fig3_tracking_ui", argc, argv);
  std::printf("Figure 3: Kremlin UI on the feature-tracking benchmark\n\n");
  std::printf("$> make CC=kremlin-cc\n$> ./tracking data\n"
              "$> kremlin tracking --personality=openmp\n\n");
  KremlinDriver Driver;
  DriverResult Result = Driver.runOnSource(trackingSource(), "tracking.c");
  if (!Result.succeeded()) {
    for (const std::string &E : Result.Errors)
      std::fprintf(stderr, "%s\n", E.c_str());
    return 1;
  }
  std::fputs(printPlan(*Result.M, Result.ThePlan, 10).c_str(), stdout);
  Reporter.metric("tracking.plan_size", Result.ThePlan.Items.size());
  Reporter.metric("tracking.dyn_instructions", Result.Exec.DynInstructions);
  if (!Result.ThePlan.Items.empty()) {
    Reporter.metric("tracking.top_self_parallelism",
                    Result.ThePlan.Items.front().SelfP);
    Reporter.metric("tracking.top_coverage_pct",
                    Result.ThePlan.Items.front().CoveragePct);
  }
  std::printf("\npaper top rows: imageBlur 145.3/9.7, imageBlur 145.3/8.7, "
              "getInterpPatch 25.3/8.86,\ncalcSobel_dX 126.2/8.1, "
              "calcSobel_dX 126.2/8.1\n");
  return 0;
}
