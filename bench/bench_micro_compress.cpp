//===- bench/bench_micro_compress.cpp - Compression microbenchmarks -------===//
//
// Microbenchmarks for the dictionary compressor: interning throughput on
// repetitive streams (the common case: a loop's identical iterations), on
// unique streams (worst case: every summary new), and multiplicity
// recovery from the compressed form (the "plan without decompressing"
// operation of §4.4).
//
//===----------------------------------------------------------------------===//

#include "GBenchJson.h"

#include "compress/Dictionary.h"

#include <benchmark/benchmark.h>

using namespace kremlin;

namespace {

void BM_InternRepetitive(benchmark::State &State) {
  DictionaryCompressor Dict;
  uint64_t I = 0;
  for (auto _ : State) {
    DynRegionSummary S;
    S.Static = 5;
    S.Work = 100;
    S.Cp = 10;
    benchmark::DoNotOptimize(Dict.intern(std::move(S)));
    ++I;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_InternRepetitive);

void BM_InternUnique(benchmark::State &State) {
  DictionaryCompressor Dict;
  uint64_t I = 0;
  for (auto _ : State) {
    DynRegionSummary S;
    S.Static = 5;
    S.Work = 100 + I;
    S.Cp = 10 + (I % 91);
    benchmark::DoNotOptimize(Dict.intern(std::move(S)));
    ++I;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_InternUnique);

/// Builds a deep dictionary (a chain of nested regions, each repeating its
/// child 100x) and measures multiplicity recovery: each alphabet entry
/// stands for up to 100^depth dynamic regions.
void BM_ComputeMultiplicities(benchmark::State &State) {
  DictionaryCompressor Dict;
  SummaryChar Child = 0;
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (unsigned D = 0; D < Depth; ++D) {
    DynRegionSummary S;
    S.Static = D;
    S.Work = 100 * (D + 1);
    S.Cp = 10 * (D + 1);
    if (D > 0)
      S.Children.emplace_back(Child, 100);
    Child = Dict.intern(std::move(S));
  }
  Dict.onRootExit(Child);
  for (auto _ : State)
    benchmark::DoNotOptimize(Dict.computeMultiplicities());
  State.SetItemsProcessed(State.iterations() * Depth);
}
BENCHMARK(BM_ComputeMultiplicities)->Arg(8)->Arg(64)->Arg(512);

} // namespace

int main(int argc, char **argv) {
  return kremlin::bench::gbenchJsonMain("micro_compress", argc, argv);
}
