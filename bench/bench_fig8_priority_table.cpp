//===- bench/bench_fig8_priority_table.cpp - Figure 8 ---------------------===//
//
// Regenerates Figure 8: the fraction of each benchmark's total realized
// time reduction attained by the first 25% / 50% / 75% / 100% of Kremlin's
// plan, plus the average and average-marginal rows. The paper reports
// averages of 56.2 / 86.4 / 95.6 / 100 (marginals 56.2 / 30.2 / 9.2 / 4.4).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace kremlin;
using namespace kremlin::bench;

int main(int argc, char **argv) {
  BenchReporter Reporter("fig8_priority_table", argc, argv);
  std::printf("Figure 8: marginal benefit of region parallelization\n\n");
  TablePrinter Table;
  Table.setHeader({"Benchmark", "25%", "50%", "75%", "100%"});

  double Avg[4] = {0, 0, 0, 0};
  unsigned Count = 0;
  for (const std::string &Name : paperBenchmarkNames()) {
    BenchRun Run = runPaperBenchmark(Name);
    ExecutionSimulator Sim(Run.profile());
    std::vector<double> Cum =
        Sim.cumulativeTimeReduction(Run.kremlinPlan().regionIds());
    if (Cum.empty() || Cum.back() <= 0.0)
      continue;

    double Total = Cum.back();
    std::vector<std::string> Row = {Name};
    double Fracs[4];
    for (int Q = 0; Q < 4; ++Q) {
      size_t K = static_cast<size_t>(
          std::ceil(Cum.size() * (Q + 1) / 4.0));
      K = std::min(std::max<size_t>(K, 1), Cum.size());
      Fracs[Q] = 100.0 * Cum[K - 1] / Total;
      Avg[Q] += Fracs[Q];
      Row.push_back(formatPercent(Fracs[Q], 1));
    }
    ++Count;
    Table.addRow(Row);
  }
  Table.addSeparator();
  std::vector<std::string> AvgRow = {"average benefit"};
  std::vector<std::string> MargRow = {"marginal avg benefit"};
  double Prev = 0.0;
  static const char *QuartileKeys[4] = {
      "overall.benefit_at_25pct", "overall.benefit_at_50pct",
      "overall.benefit_at_75pct", "overall.benefit_at_100pct"};
  for (int Q = 0; Q < 4; ++Q) {
    double A = Avg[Q] / std::max(1u, Count);
    Reporter.metric(QuartileKeys[Q], A);
    AvgRow.push_back(formatPercent(A, 1));
    MargRow.push_back(formatPercent(A - Prev, 1));
    Prev = A;
  }
  Table.addRow(AvgRow);
  Table.addRow(MargRow);
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper: average benefit 56.2 / 86.4 / 95.6 / 100.0  "
              "(marginal 56.2 / 30.2 / 9.2 / 4.4)\n");
  return 0;
}
