//===- bench/bench_tab_input_sensitivity.cpp - §6.1 train vs ref ----------===//
//
// Regenerates the §6.1 input-sensitivity check: "we reused the
// parallelized program based on the train input parallelism plan to
// measure the speedup numbers ... with the larger ref input. We found
// that Kremlin-based parallelization remained equally competitive on both
// input sizes."
//
// Protocol: plan each benchmark on a small ("train") input, transfer that
// plan by source location onto a profile of a 4x larger ("ref") input,
// and compare its machine-model speedup against the plan computed
// natively on the ref input. A ratio near 1.0 means the plan is
// input-insensitive.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace kremlin;
using namespace kremlin::bench;

namespace {

/// Profiles \p Spec and returns the full driver result.
DriverResult profileSpec(const BenchmarkSpec &Spec) {
  GeneratedBenchmark GB = generateBenchmark(Spec);
  KremlinDriver Driver;
  DriverResult R = Driver.runOnSource(GB.Source, Spec.Name + ".c");
  if (!R.succeeded()) {
    for (const std::string &E : R.Errors)
      std::fprintf(stderr, "[%s] %s\n", Spec.Name.c_str(), E.c_str());
    std::exit(1);
  }
  return R;
}

/// Source start lines of a plan's regions.
std::vector<unsigned> planLines(const DriverResult &R) {
  std::vector<unsigned> Lines;
  for (const PlanItem &I : R.ThePlan.Items)
    Lines.push_back(R.M->Regions[I.Region].StartLine);
  return Lines;
}

} // namespace

int main(int argc, char **argv) {
  BenchReporter Reporter("tab_input_sensitivity", argc, argv);
  std::printf("Section 6.1: input sensitivity (train-input plan evaluated "
              "on the ref input)\n\n");
  TablePrinter Table;
  Table.setHeader({"Benchmark", "train plan", "ref plan", "train-on-ref x",
                   "ref-native x", "ratio"});

  for (const std::string &Name : paperBenchmarkNames()) {
    BenchmarkSpec TrainSpec = paperBenchmarkSpec(Name);
    BenchmarkSpec RefSpec = TrainSpec;
    RefSpec.Timesteps = TrainSpec.Timesteps * 4; // The larger input.

    DriverResult Train = profileSpec(TrainSpec);
    DriverResult Ref = profileSpec(RefSpec);

    // Transfer the train plan onto the ref module by source location
    // (the generated sources differ only in the time-step literal).
    std::vector<RegionId> Transferred =
        loopRegionsAtLines(*Ref.M, planLines(Train));

    ExecutionSimulator Sim(*Ref.Profile);
    SimOutcome TrainOnRef = Sim.evaluatePlan(Transferred);
    SimOutcome RefNative = Sim.evaluatePlan(Ref.ThePlan.regionIds());
    double Ratio = RefNative.speedup() > 0
                       ? TrainOnRef.speedup() / RefNative.speedup()
                       : 1.0;
    Reporter.metric(Name + ".train_on_ref_ratio", Ratio);
    Table.addRow({Name, formatString("%zu", Train.ThePlan.Items.size()),
                  formatString("%zu", Ref.ThePlan.Items.size()),
                  formatFactor(TrainOnRef.speedup()),
                  formatFactor(RefNative.speedup()), formatFactor(Ratio)});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper: plans from the train input remained equally "
              "competitive on the ref input\n(ratios ~1.0 mean the plan "
              "transfers across input sizes)\n");
  return 0;
}
