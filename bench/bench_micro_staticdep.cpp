//===- bench/bench_micro_staticdep.cpp - static analysis microbenches -----===//
//
// Microbenchmarks for the static loop-dependence layer. The analyzer runs
// once per pipeline (and on every `kremlin lint`), so its cost must stay
// linear in module size: these cases pin the reaching-definitions fixpoint,
// the per-loop scalar dependence scan, and the whole-module analyze stage
// on a synthetic many-loop program.
//
//===----------------------------------------------------------------------===//

#include "GBenchJson.h"

#include "analysis/CallGraph.h"
#include "analysis/DataFlow.h"
#include "analysis/ModRef.h"
#include "analysis/StaticDependence.h"
#include "instrument/Instrumenter.h"
#include "parser/Lower.h"
#include "support/StringUtils.h"

#include <benchmark/benchmark.h>

using namespace kremlin;

namespace {

/// A program with many loops of every verdict class: doall writes to
/// distinct cells, serial array recurrences, reductions, and an indirect
/// subscript the SIV tests must give up on.
std::string manyLoopSource() {
  std::string Src = "int a[256];\nint b[256];\nint idx[64];\n";
  Src += "int main() {\n  int s = 0;\n";
  for (unsigned K = 0; K < 8; ++K) {
    Src += formatString("  for (int d%u = 0; d%u < 64; d%u = d%u + 1) {"
                        " a[d%u] = d%u * 3 + %u; }\n",
                        K, K, K, K, K, K, K);
    Src += formatString("  for (int r%u = 0; r%u < 63; r%u = r%u + 1) {"
                        " b[r%u + 1] = b[r%u] + 1; }\n",
                        K, K, K, K, K, K);
    Src += formatString("  for (int s%u = 0; s%u < 64; s%u = s%u + 1) {"
                        " s = s + a[s%u]; }\n",
                        K, K, K, K, K);
    Src += formatString("  for (int u%u = 0; u%u < 64; u%u = u%u + 1) {"
                        " b[idx[u%u] %% 256] = u%u; }\n",
                        K, K, K, K, K, K);
  }
  Src += "  return s % 1009;\n}\n";
  return Src;
}

/// Compiles + instruments the synthetic module once for all measurements.
const Module &staticDepModule() {
  static std::unique_ptr<Module> M = [] {
    LowerResult LR = compileMiniC(manyLoopSource(), "staticdep.c");
    if (!LR.succeeded())
      std::abort();
    instrumentModule(*LR.M);
    return std::move(LR.M);
  }();
  return *M;
}

const Function &mainFunction() {
  const Module &M = staticDepModule();
  FuncId Main = M.mainFunction();
  if (Main == NoFunc)
    std::abort();
  return M.Functions[Main];
}

/// The gen/kill bitvector fixpoint over the 32-loop main function.
void BM_ReachingDefs(benchmark::State &State) {
  const Function &F = mainFunction();
  for (auto _ : State) {
    ReachingDefs RD(F);
    benchmark::DoNotOptimize(RD.defs().size());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ReachingDefs);

/// One back-edge scalar dependence scan per natural loop, reusing a
/// single reaching-defs result the way the analyzer does.
void BM_LoopCarriedScalarDeps(benchmark::State &State) {
  const Function &F = mainFunction();
  ReachingDefs RD(F);
  DomTree DT = computeDominators(F);
  LoopInfo LI = computeLoops(F);
  size_t Deps = 0;
  for (auto _ : State)
    for (const Loop &L : LI.Loops)
      Deps += findLoopCarriedScalarDeps(F, L, RD, DT).size();
  benchmark::DoNotOptimize(Deps);
  State.SetItemsProcessed(State.iterations() * LI.Loops.size());
}
BENCHMARK(BM_LoopCarriedScalarDeps);

/// The whole analyze stage as the driver runs it: every function, every
/// loop, ZIV/SIV subscript tests included.
void BM_AnalyzeModule(benchmark::State &State) {
  const Module &M = staticDepModule();
  for (auto _ : State) {
    StaticAnalysisResult R = analyzeModuleDependence(M);
    if (R.Loops.empty())
      State.SkipWithError("no loops analyzed");
    benchmark::DoNotOptimize(R.NumDoall + R.NumSerial + R.NumUnknown);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AnalyzeModule);

/// A call-heavy module: a pure recursive helper, array-parameter writers,
/// global accumulators, and loops whose verdicts need callee summaries
/// plus GCD/Banerjee cross-stride subscript pairs.
std::string interprocSource() {
  std::string Src = "int a[256];\nint b[256];\nint acc[8];\n";
  Src += "int fib(int n) {"
         " if (n < 2) { return n; }"
         " return fib(n - 1) + fib(n - 2); }\n";
  Src += "void put(int p[], int i, int v) { p[i] = v; }\n";
  Src += "int tally(int i) { acc[0] = acc[0] + i; return acc[0]; }\n";
  Src += "int main() {\n  int s = 0;\n";
  for (unsigned K = 0; K < 8; ++K) {
    Src += formatString("  for (int c%u = 0; c%u < 32; c%u = c%u + 1) {"
                        " a[c%u] = fib(c%u %% 10); }\n",
                        K, K, K, K, K, K);
    Src += formatString("  for (int p%u = 0; p%u < 32; p%u = p%u + 1) {"
                        " put(b, p%u, p%u * 2); }\n",
                        K, K, K, K, K, K);
    Src += formatString("  for (int t%u = 0; t%u < 32; t%u = t%u + 1) {"
                        " s = s + tally(t%u) %% 13; }\n",
                        K, K, K, K, K);
    Src += formatString("  for (int g%u = 0; g%u < 32; g%u = g%u + 1) {"
                        " a[4 * g%u + 1] = a[2 * g%u] + 1; }\n",
                        K, K, K, K, K, K);
    Src += formatString("  for (int w%u = 0; w%u < 10; w%u = w%u + 1) {"
                        " b[w%u + 50] = b[2 * w%u] + 1; }\n",
                        K, K, K, K, K, K);
  }
  Src += "  return s % 1009;\n}\n";
  return Src;
}

const Module &interprocModule() {
  static std::unique_ptr<Module> M = [] {
    LowerResult LR = compileMiniC(interprocSource(), "interproc.c");
    if (!LR.succeeded())
      std::abort();
    instrumentModule(*LR.M);
    return std::move(LR.M);
  }();
  return *M;
}

/// Call-graph construction (sites, callee dedup, Tarjan SCCs).
void BM_CallGraphBuild(benchmark::State &State) {
  const Module &M = interprocModule();
  for (auto _ : State) {
    CallGraph CG(M);
    benchmark::DoNotOptimize(CG.numFunctions());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CallGraphBuild);

/// Bottom-up mod/ref summaries, including the recursive-SCC fixpoint.
void BM_ModRefSummaries(benchmark::State &State) {
  const Module &M = interprocModule();
  CallGraph CG(M);
  for (auto _ : State) {
    ModRefResult MR = computeModRef(M, CG);
    benchmark::DoNotOptimize(MR.Summaries.size());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ModRefSummaries);

/// The analyze stage over the call-heavy module: callee-effect merging
/// plus the GCD and trip-counted Banerjee subscript tests.
void BM_AnalyzeInterprocModule(benchmark::State &State) {
  const Module &M = interprocModule();
  for (auto _ : State) {
    StaticAnalysisResult R = analyzeModuleDependence(M);
    if (R.CallsSummarized == 0)
      State.SkipWithError("no call summaries used");
    benchmark::DoNotOptimize(R.NumDoall + R.NumReduction + R.NumUnknown);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AnalyzeInterprocModule);

} // namespace

int main(int argc, char **argv) {
  return kremlin::bench::gbenchJsonMain("micro_staticdep", argc, argv);
}
