//===- bench/bench_ablation_planner.cpp - Planner design ablations --------===//
//
// Ablation harness for the planner design choices §5.1 motivates:
//
//  1. DP vs. greedy region selection — "a parent region might have the
//     highest single potential speedup, but collectively a set of its
//     child regions could offer a higher combined speedup ... this problem
//     was observed in two of the NPB benchmarks: ft and lu";
//  2. the OpenMP vs. Cilk++ personalities on the same profiles (nested
//     parallelism allowed, lower thresholds);
//  3. a core-count cap on estimated speedup — the paper tried it and found
//     it *hurt* plan quality (it hides the difference between SP = N and
//     SP >> N); reproduced by capping gains at 32 and comparing.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>

using namespace kremlin;
using namespace kremlin::bench;

int main(int argc, char **argv) {
  BenchReporter Reporter("ablation_planner", argc, argv);
  std::printf("Planner ablations (DP vs greedy; OpenMP vs Cilk++)\n\n");
  TablePrinter Table;
  Table.setHeader({"Benchmark", "DP size", "DP x", "greedy size",
                   "greedy x", "cilk size"});

  for (const std::string &Name : paperBenchmarkNames()) {
    BenchRun Run = runPaperBenchmark(Name);
    ExecutionSimulator Sim(Run.profile());

    PlannerOptions Opts;
    Plan Dp = Run.kremlinPlan();
    Opts.Greedy = true;
    Plan Greedy = makeOpenMPPersonality()->plan(Run.profile(), Opts);
    Opts.Greedy = false;
    Plan Cilk = makeCilkPersonality()->plan(Run.profile(), Opts);

    SimOutcome DpOut = Sim.evaluatePlan(Dp.regionIds());
    SimOutcome GreedyOut = Sim.evaluatePlan(Greedy.regionIds());
    Reporter.metric(Name + ".dp_sim_speedup", DpOut.speedup());
    Reporter.metric(Name + ".greedy_sim_speedup", GreedyOut.speedup());
    Reporter.metric(Name + ".cilk_plan_size", Cilk.Items.size());
    Table.addRow({Name, formatString("%zu", Dp.Items.size()),
                  formatFactor(DpOut.speedup()),
                  formatString("%zu", Greedy.Items.size()),
                  formatFactor(GreedyOut.speedup()),
                  formatString("%zu", Cilk.Items.size())});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper: greedy misplans ft and lu (parent chosen over its "
              "children); Cilk++ accepts nested, finer-grained regions\n");
  return 0;
}
