//===- bench/bench_micro_interp.cpp - Execute-stage microbenchmarks -------===//
//
// Microbenchmarks for the execute stage rebuilt around the pre-decoded
// execution tape and the batched-event runtime interface. Three angles:
//
//  * dispatch-only: plain (unprofiled) execution on the threaded-dispatch
//    tape vs. the legacy switch-over-IR engine — the interpreter speedup
//    in isolation;
//  * shadow-only: KremlinRuntime::consumeBatch driven by a synthetic event
//    stream — HCPA consumption cost with no interpreter attached;
//  * combined: the full profiled execution, which is what the suite's
//    *.execute_wall_ms baselines measure end to end.
//
//===----------------------------------------------------------------------===//

#include "GBenchJson.h"

#include "instrument/Instrumenter.h"
#include "interp/Tape.h"
#include "parser/Lower.h"

#include <benchmark/benchmark.h>

using namespace kremlin;

namespace {

/// Compiles + instruments tracking.c once for all measurements.
const Module &trackingModule() {
  static std::unique_ptr<Module> M = [] {
    LowerResult LR = compileMiniC(trackingSource(), "tracking.c");
    if (!LR.succeeded())
      std::abort();
    instrumentModule(*LR.M);
    return std::move(LR.M);
  }();
  return *M;
}

// --- Dispatch only ------------------------------------------------------

void BM_TapeDispatchPlain(benchmark::State &State) {
  InterpConfig Cfg;
  Cfg.UseTape = true;
  Interpreter Interp(trackingModule(), Cfg);
  uint64_t Instructions = 0;
  for (auto _ : State) {
    ExecResult R = Interp.run();
    if (!R.Ok)
      State.SkipWithError("execution failed");
    Instructions += R.DynInstructions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_TapeDispatchPlain)->Unit(benchmark::kMillisecond);

void BM_SwitchDispatchPlain(benchmark::State &State) {
  InterpConfig Cfg;
  Cfg.UseTape = false;
  Interpreter Interp(trackingModule(), Cfg);
  uint64_t Instructions = 0;
  for (auto _ : State) {
    ExecResult R = Interp.run();
    if (!R.Ok)
      State.SkipWithError("execution failed");
    Instructions += R.DynInstructions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_SwitchDispatchPlain)->Unit(benchmark::kMillisecond);

/// Module -> tape decode cost (paid once per profiled execution).
void BM_TapeDecode(benchmark::State &State) {
  const Module &M = trackingModule();
  std::vector<uint64_t> GlobalBase(M.Globals.size(), 0);
  for (auto _ : State) {
    ModuleTape Tape(M, GlobalBase);
    benchmark::DoNotOptimize(Tape.Funcs.data());
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TapeDecode);

// --- Shadow only --------------------------------------------------------

/// A sink that discards summaries (isolates the consumption path).
class NullSink : public RegionSummarySink {
public:
  SummaryChar intern(DynRegionSummary) override { return 0; }
  void onRootExit(SummaryChar) override {}
};

ProfEvent opEvent(Opcode Op, uint32_t Dst, uint32_t A, uint32_t B) {
  ProfEvent E;
  E.Kind = static_cast<uint8_t>(EvKind::Op);
  E.Opc = static_cast<uint8_t>(Op);
  E.A = Dst;
  E.B = A;
  E.C = B;
  return E;
}

/// consumeBatch on a synthetic arithmetic-heavy batch: the suite's measured
/// event mix is dominated by plain ops, so this is the consumption hot
/// path (dispatch + watermark-checked slot loop) with no producer cost.
void BM_ConsumeBatchOps(benchmark::State &State) {
  NullSink Sink;
  KremlinConfig Cfg;
  KremlinRuntime RT(Cfg, Sink);
  RT.pushFrame(/*NumRegs=*/64);
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (unsigned D = 0; D < Depth; ++D)
    RT.enterRegion(D);
  std::vector<ProfEvent> Batch;
  Batch.reserve(ProfEventBatchSize);
  for (size_t I = 0; I < ProfEventBatchSize; ++I)
    Batch.push_back(opEvent(Opcode::Add, (I + 2) % 64, I % 64, (I + 1) % 64));
  for (auto _ : State)
    RT.consumeBatch(Batch.data(), Batch.size());
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations() * Batch.size()));
}
BENCHMARK(BM_ConsumeBatchOps)->Arg(2)->Arg(6)->Arg(12);

/// consumeBatch across a region boundary: enter/exit plus a burst of ops —
/// exercises the structural events (instance retag, summary interning)
/// that a pure op batch skips.
void BM_ConsumeBatchRegionCycle(benchmark::State &State) {
  NullSink Sink;
  KremlinConfig Cfg;
  KremlinRuntime RT(Cfg, Sink);
  RT.pushFrame(/*NumRegs=*/64);
  RT.enterRegion(0);
  std::vector<ProfEvent> Batch;
  Batch.reserve(ProfEventBatchSize);
  for (size_t I = 0; I + 34 <= ProfEventBatchSize;) {
    ProfEvent Enter;
    Enter.Kind = static_cast<uint8_t>(EvKind::RegionEnter);
    Enter.A = 1;
    Batch.push_back(Enter);
    ++I;
    for (unsigned K = 0; K < 32; ++K, ++I)
      Batch.push_back(
          opEvent(Opcode::Add, (I + 2) % 64, I % 64, (I + 1) % 64));
    ProfEvent Exit;
    Exit.Kind = static_cast<uint8_t>(EvKind::RegionExit);
    Exit.A = 1;
    Batch.push_back(Exit);
    ++I;
  }
  for (auto _ : State)
    RT.consumeBatch(Batch.data(), Batch.size());
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations() * Batch.size()));
}
BENCHMARK(BM_ConsumeBatchRegionCycle);

/// Frame push/pop churn: the call-heavy path whose per-call cost the
/// watermark scheme collapses from a cell memset to a row-watermark clear.
void BM_ConsumeBatchCallChurn(benchmark::State &State) {
  NullSink Sink;
  KremlinConfig Cfg;
  KremlinRuntime RT(Cfg, Sink);
  RT.pushFrame(/*NumRegs=*/64);
  RT.enterRegion(0);
  std::vector<ProfEvent> Batch;
  Batch.reserve(ProfEventBatchSize);
  for (size_t I = 0; I + 8 <= ProfEventBatchSize;) {
    ProfEvent Push;
    Push.Kind = static_cast<uint8_t>(EvKind::PushFrame);
    Push.A = 96;
    Batch.push_back(Push);
    ++I;
    for (unsigned K = 0; K < 6; ++K, ++I)
      Batch.push_back(
          opEvent(Opcode::Add, (I + 2) % 64, I % 64, (I + 1) % 64));
    ProfEvent Pop;
    Pop.Kind = static_cast<uint8_t>(EvKind::PopFrame);
    Batch.push_back(Pop);
    ++I;
  }
  for (auto _ : State)
    RT.consumeBatch(Batch.data(), Batch.size());
  State.SetItemsProcessed(
      static_cast<int64_t>(State.iterations() * Batch.size()));
}
BENCHMARK(BM_ConsumeBatchCallChurn);

// --- Combined -----------------------------------------------------------

void BM_ProfiledExecutionTape(benchmark::State &State) {
  InterpConfig ICfg;
  ICfg.UseTape = true;
  Interpreter Interp(trackingModule(), ICfg);
  uint64_t Instructions = 0;
  for (auto _ : State) {
    DictionaryCompressor Dict;
    KremlinConfig Cfg;
    KremlinRuntime RT(Cfg, Dict);
    ExecResult R = Interp.run(&RT);
    if (!R.Ok)
      State.SkipWithError("execution failed");
    Instructions += R.DynInstructions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_ProfiledExecutionTape)->Unit(benchmark::kMillisecond);

void BM_ProfiledExecutionSwitch(benchmark::State &State) {
  InterpConfig ICfg;
  ICfg.UseTape = false;
  Interpreter Interp(trackingModule(), ICfg);
  uint64_t Instructions = 0;
  for (auto _ : State) {
    DictionaryCompressor Dict;
    KremlinConfig Cfg;
    KremlinRuntime RT(Cfg, Dict);
    ExecResult R = Interp.run(&RT);
    if (!R.Ok)
      State.SkipWithError("execution failed");
    Instructions += R.DynInstructions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_ProfiledExecutionSwitch)->Unit(benchmark::kMillisecond);

} // namespace

int main(int argc, char **argv) {
  return kremlin::bench::gbenchJsonMain("micro_interp", argc, argv);
}
