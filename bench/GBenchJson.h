//===- bench/GBenchJson.h - google-benchmark JSON capture -------*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replacement for BENCHMARK_MAIN() in the micro-bench binaries: runs the
/// registered google-benchmark cases with the normal console output while
/// also capturing each case's per-iteration real time into a BenchReporter,
/// so the micro benches emit the same --json=<path> documents as the
/// figure/table benches.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_BENCH_GBENCHJSON_H
#define KREMLIN_BENCH_GBENCHJSON_H

#include "BenchUtil.h"

#include <benchmark/benchmark.h>

namespace kremlin::bench {

/// ConsoleReporter that tees every successful run's adjusted real time
/// (ns/iteration) into a BenchReporter as "<figure>.<case>.real_ns" — the
/// figure prefix keeps names unique when several micro benches land in
/// one baseline document.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
public:
  JsonCaptureReporter(std::string Figure, BenchReporter &Reporter)
      : Figure(std::move(Figure)), Reporter(Reporter) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs)
      if (!R.error_occurred)
        Reporter.metric(Figure + "." + R.benchmark_name() + ".real_ns",
                        R.GetAdjustedRealTime());
    ConsoleReporter::ReportRuns(Runs);
  }

private:
  std::string Figure;
  BenchReporter &Reporter;
};

/// Drop-in main body: strip --json, init google-benchmark, run everything
/// through the capturing reporter.
inline int gbenchJsonMain(const std::string &Figure, int argc, char **argv) {
  BenchReporter Reporter(Figure, argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  JsonCaptureReporter Console(Figure, Reporter);
  benchmark::RunSpecifiedBenchmarks(&Console);
  return 0;
}

} // namespace kremlin::bench

#endif // KREMLIN_BENCH_GBENCHJSON_H
