//===- bench/bench_fig9_plan_reduction.cpp - Figure 9 ---------------------===//
//
// Regenerates Figure 9: plan size as a percentage of all candidate regions
// under three progressively smarter planners — work coverage only (the
// gprof approach), work + self-parallelism filtering, and the full OpenMP
// planner personality. Paper averages: ~58.9%, 25.4%, 3.0%.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace kremlin;
using namespace kremlin::bench;

int main(int argc, char **argv) {
  BenchReporter Reporter("fig9_plan_reduction", argc, argv);
  std::printf("Figure 9: plan size reduction by planning component\n\n");
  TablePrinter Table;
  Table.setHeader({"Benchmark", "regions", "work %", "self-P %", "planner %"});

  double AvgWork = 0, AvgSelfP = 0, AvgFull = 0;
  unsigned Count = 0;
  for (const std::string &Name : paperBenchmarkNames()) {
    BenchRun Run = runPaperBenchmark(Name);
    unsigned Total = Run.module().numCandidateRegions();
    if (Total == 0)
      continue;

    PlannerOptions Opts;
    Plan Work = makeWorkOnlyPersonality()->plan(Run.profile(), Opts);
    Plan SelfP = makeSelfPFilterPersonality()->plan(Run.profile(), Opts);
    const Plan &Full = Run.kremlinPlan();

    double WorkPct = 100.0 * Work.Items.size() / Total;
    double SelfPPct = 100.0 * SelfP.Items.size() / Total;
    double FullPct = 100.0 * Full.Items.size() / Total;
    AvgWork += WorkPct;
    AvgSelfP += SelfPPct;
    AvgFull += FullPct;
    ++Count;
    Table.addRow({Name, formatString("%u", Total), formatFixed(WorkPct, 1),
                  formatFixed(SelfPPct, 1), formatFixed(FullPct, 1)});
  }
  Table.addSeparator();
  Table.addRow({"average", "", formatFixed(AvgWork / Count, 1),
                formatFixed(AvgSelfP / Count, 1),
                formatFixed(AvgFull / Count, 1)});
  Reporter.metric("overall.work_only_plan_pct", AvgWork / Count);
  Reporter.metric("overall.selfp_filter_plan_pct", AvgSelfP / Count);
  Reporter.metric("overall.full_planner_plan_pct", AvgFull / Count);
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper averages: work-only ~58.9%%, + self-parallelism "
              "25.4%%, full planner 3.0%%\n");
  return 0;
}
