//===- bench/bench_fig5_selfp_examples.cpp - Figure 5 ---------------------===//
//
// Regenerates Figure 5's worked self-parallelism examples: a region whose
// children must run serially has SP = 1; a region whose n children can run
// in parallel has SP = n. Exercised end-to-end (source -> HCPA -> profile)
// rather than on synthetic summaries.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace kremlin;
using namespace kremlin::bench;

namespace {

/// Profiles \p Source and returns (SP, iteration count) of the first loop.
std::pair<double, double> firstLoopSp(const std::string &Source) {
  KremlinDriver Driver;
  DriverResult R = Driver.runOnSource(Source, "fig5.c");
  if (!R.succeeded())
    std::exit(1);
  for (const RegionProfileEntry &E : R.Profile->entries()) {
    if (R.M->Regions[E.Id].Kind == RegionKind::Loop && E.Executed)
      return {E.SelfParallelism, E.avgIterations()};
  }
  return {0.0, 0.0};
}

} // namespace

int main(int argc, char **argv) {
  BenchReporter Reporter("fig5_selfp_examples", argc, argv);
  std::printf("Figure 5: self-parallelism worked examples\n\n");
  TablePrinter Table;
  Table.setHeader({"case", "children n", "measured SP", "expected"});

  for (unsigned N : {8u, 32u, 128u}) {
    std::string Serial = formatString(R"(
      int a[%u];
      int main() {
        int c = 3;
        for (int i = 1; i < %u; i = i + 1) {
          c = c * 3 + c / (c %% 7 + 2);
          c = c + c / 5 - c %% 13;
          c = c * 2 - c / (c %% 5 + 3);
          c = c + c %% 17 + 1;
          c = c * 3 + c / 9;
          c = c - c / (c %% 3 + 2);
          a[i] = c;
        }
        return a[%u] %% 100;
      }
    )", N + 1, N + 1, N);
    auto [SpSerial, ItersSerial] = firstLoopSp(Serial);
    Table.addRow({formatString("serial children (n=%u)", N),
                  formatFixed(ItersSerial, 0), formatFixed(SpSerial, 2),
                  "= 1"});
    Reporter.metric(formatString("serial_n%u.self_parallelism", N), SpSerial);

    std::string Parallel = formatString(R"(
      int a[%u];
      int main() {
        for (int i = 0; i < %u; i = i + 1) {
          a[i] = i * 3 + i / 7 + i %% 13 + 1;
        }
        return a[%u] %% 100;
      }
    )", N, N, N - 1);
    auto [SpPar, ItersPar] = firstLoopSp(Parallel);
    Table.addRow({formatString("parallel children (n=%u)", N),
                  formatFixed(ItersPar, 0), formatFixed(SpPar, 2),
                  formatString("~ %u", N)});
    Reporter.metric(formatString("parallel_n%u.self_parallelism", N), SpPar);
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper: SP(serial) = n*cp / (n*cp) = 1;  "
              "SP(parallel) = n*cp / cp = n\n");
  return 0;
}
