//===- bench/bench_tab_selfp_classification.cpp - §6.2 --------------------===//
//
// Regenerates the §6.2 "Effectiveness of Self-Parallelism Metric"
// experiment: classify every candidate region in the suite as high/low
// parallelism against the 5.0 threshold, once by classic total-parallelism
// (work/cp) and once by self-parallelism. The paper: 2535 regions,
// total-parallelism flags 25.8% as low, self-parallelism 58.9% (a 2.28x
// reduction in parallelism false positives).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace kremlin;
using namespace kremlin::bench;

int main(int argc, char **argv) {
  BenchReporter Reporter("tab_selfp_classification", argc, argv);
  std::printf("Section 6.2: self-parallelism vs total-parallelism "
              "classification (threshold 5.0)\n\n");
  TablePrinter Table;
  Table.setHeader({"Benchmark", "regions", "low by TP", "low by SP"});

  const double Threshold = 5.0;
  uint64_t Total = 0, LowTp = 0, LowSp = 0;
  for (const std::string &Name : paperBenchmarkNames()) {
    BenchRun Run = runPaperBenchmark(Name);
    uint64_t N = 0, Tp = 0, Sp = 0;
    for (const RegionProfileEntry &E : Run.profile().entries()) {
      const StaticRegion &R = Run.module().Regions[E.Id];
      if (R.Kind == RegionKind::Body)
        continue;
      ++N;
      // Unexecuted regions have no observed parallelism at all.
      if (!E.Executed || E.TotalParallelism < Threshold)
        ++Tp;
      if (!E.Executed || E.SelfParallelism < Threshold)
        ++Sp;
    }
    Total += N;
    LowTp += Tp;
    LowSp += Sp;
    Table.addRow({Name, formatString("%llu", (unsigned long long)N),
                  formatString("%llu", (unsigned long long)Tp),
                  formatString("%llu", (unsigned long long)Sp)});
  }
  Table.addSeparator();
  Table.addRow({"total", formatString("%llu", (unsigned long long)Total),
                formatString("%llu (%.1f%%)", (unsigned long long)LowTp,
                             100.0 * LowTp / Total),
                formatString("%llu (%.1f%%)", (unsigned long long)LowSp,
                             100.0 * LowSp / Total)});
  std::fputs(Table.render().c_str(), stdout);
  Reporter.metric("overall.regions", Total);
  Reporter.metric("overall.low_by_total_parallelism", LowTp);
  Reporter.metric("overall.low_by_self_parallelism", LowSp);
  std::printf("\nself-parallelism flags %.2fx more regions as "
              "low-parallelism than total-parallelism\n",
              static_cast<double>(LowSp) / static_cast<double>(LowTp));
  std::printf("paper: 2535 regions; low by total-parallelism 25.8%%, low by "
              "self-parallelism 58.9%% (2.28x)\n");
  return 0;
}
