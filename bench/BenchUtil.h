//===- bench/BenchUtil.h - Shared experiment harness helpers ----*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure/table bench binaries: run the full
/// Kremlin pipeline over a paper benchmark, map its MANUAL plan to region
/// ids, evaluate plans on the machine model, and emit each figure's
/// headline numbers as a structured JSON document when --json=<path> is
/// passed (the same {"metrics": {...}} shape kremlin-bench writes, so one
/// parser reads both).
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_BENCH_BENCHUTIL_H
#define KREMLIN_BENCH_BENCHUTIL_H

#include "driver/KremlinDriver.h"
#include "machine/ExecutionSimulator.h"
#include "suite/PaperSuite.h"
#include "support/Json.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace kremlin::bench {

/// Collects a figure's metrics and writes them as JSON on destruction when
/// the binary was invoked with --json=<path>. The constructor strips the
/// --json flag out of argv so later flag parsers (google-benchmark's
/// Initialize) never see it.
class BenchReporter {
public:
  BenchReporter(std::string Figure, int &Argc, char **Argv)
      : Figure(std::move(Figure)) {
    int Kept = 1;
    for (int I = 1; I < Argc; ++I) {
      std::string Arg = Argv[I];
      if (Arg.rfind("--json=", 0) == 0)
        OutPath = Arg.substr(7);
      else
        Argv[Kept++] = Argv[I];
    }
    Argc = Kept;
  }

  BenchReporter(const BenchReporter &) = delete;
  BenchReporter &operator=(const BenchReporter &) = delete;

  /// Records one metric (insertion order is preserved in the output).
  void metric(const std::string &Name, double Value) {
    Metrics.emplace_back(Name, Value);
  }

  bool enabled() const { return !OutPath.empty(); }

  ~BenchReporter() {
    if (OutPath.empty())
      return;
    JsonValue Doc = JsonValue::makeObject();
    Doc.set("schema", JsonValue(1));
    Doc.set("kind", JsonValue("kremlin-bench-figure"));
    Doc.set("figure", JsonValue(Figure));
    JsonValue Map = JsonValue::makeObject();
    for (const auto &M : Metrics)
      Map.set(M.first, JsonValue(M.second));
    Doc.set("metrics", std::move(Map));
    if (!writeStringToFile(OutPath, Doc.serialize() + "\n"))
      std::fprintf(stderr, "bench: cannot write '%s'\n", OutPath.c_str());
    else
      std::printf("\nmetrics written to %s\n", OutPath.c_str());
  }

private:
  std::string Figure;
  std::string OutPath;
  std::vector<std::pair<std::string, double>> Metrics;
};

/// One fully profiled paper benchmark.
struct BenchRun {
  std::string Name;
  GeneratedBenchmark Generated;
  DriverResult Result;
  /// MANUAL plan as region ids (mapped from generated loop lines).
  std::vector<RegionId> ManualPlan;

  const Module &module() const { return *Result.M; }
  const ParallelismProfile &profile() const { return *Result.Profile; }
  const Plan &kremlinPlan() const { return Result.ThePlan; }
};

/// Profiles one paper benchmark and maps its MANUAL plan. Exits the
/// process on pipeline errors (bench binaries must not silently lie).
inline BenchRun runPaperBenchmark(const std::string &Name,
                                  DriverOptions Opts = DriverOptions()) {
  BenchRun Run;
  Run.Name = Name;
  Run.Generated = generatePaperBenchmark(Name);
  KremlinDriver Driver(std::move(Opts));
  Run.Result =
      Driver.runOnSource(Run.Generated.Source, Name + ".c");
  if (!Run.Result.succeeded()) {
    for (const std::string &E : Run.Result.Errors)
      std::fprintf(stderr, "[%s] %s\n", Name.c_str(), E.c_str());
    std::exit(1);
  }
  Run.ManualPlan = loopRegionsAtLines(Run.module(),
                                      Run.Generated.manualLines());
  return Run;
}

} // namespace kremlin::bench

#endif // KREMLIN_BENCH_BENCHUTIL_H
