//===- bench/BenchUtil.h - Shared experiment harness helpers ----*- C++ -*-===//
//
// Part of the Kremlin reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-figure/table bench binaries: run the full
/// Kremlin pipeline over a paper benchmark, map its MANUAL plan to region
/// ids, and evaluate plans on the machine model.
///
//===----------------------------------------------------------------------===//

#ifndef KREMLIN_BENCH_BENCHUTIL_H
#define KREMLIN_BENCH_BENCHUTIL_H

#include "driver/KremlinDriver.h"
#include "machine/ExecutionSimulator.h"
#include "suite/PaperSuite.h"
#include "support/TablePrinter.h"

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

namespace kremlin::bench {

/// One fully profiled paper benchmark.
struct BenchRun {
  std::string Name;
  GeneratedBenchmark Generated;
  DriverResult Result;
  /// MANUAL plan as region ids (mapped from generated loop lines).
  std::vector<RegionId> ManualPlan;

  const Module &module() const { return *Result.M; }
  const ParallelismProfile &profile() const { return *Result.Profile; }
  const Plan &kremlinPlan() const { return Result.ThePlan; }
};

/// Profiles one paper benchmark and maps its MANUAL plan. Exits the
/// process on pipeline errors (bench binaries must not silently lie).
inline BenchRun runPaperBenchmark(const std::string &Name,
                                  DriverOptions Opts = DriverOptions()) {
  BenchRun Run;
  Run.Name = Name;
  Run.Generated = generatePaperBenchmark(Name);
  KremlinDriver Driver(std::move(Opts));
  Run.Result =
      Driver.runOnSource(Run.Generated.Source, Name + ".c");
  if (!Run.Result.succeeded()) {
    for (const std::string &E : Run.Result.Errors)
      std::fprintf(stderr, "[%s] %s\n", Name.c_str(), E.c_str());
    std::exit(1);
  }
  Run.ManualPlan = loopRegionsAtLines(Run.module(),
                                      Run.Generated.manualLines());
  return Run;
}

} // namespace kremlin::bench

#endif // KREMLIN_BENCH_BENCHUTIL_H
