//===- bench/bench_fig7_marginal_benefit.cpp - Figure 7 -------------------===//
//
// Regenerates Figure 7: for each benchmark, the cumulative whole-program
// time reduction as Kremlin's plan is applied one region at a time, in
// recommended order — followed by the regions MANUAL parallelized that
// Kremlin filtered out (right of the paper's dotted line), which should
// contribute next to nothing.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdio>
#include <set>

using namespace kremlin;
using namespace kremlin::bench;

int main(int argc, char **argv) {
  BenchReporter Reporter("fig7_marginal_benefit", argc, argv);
  std::printf("Figure 7: marginal time reduction per parallelized region\n");
  std::printf("(cumulative %% of serial execution time removed; '|' marks "
              "the end of Kremlin's plan)\n\n");

  for (const std::string &Name : paperBenchmarkNames()) {
    BenchRun Run = runPaperBenchmark(Name);
    ExecutionSimulator Sim(Run.profile());

    // Kremlin plan order, then the MANUAL-only leftovers.
    std::vector<RegionId> Ordered = Run.kremlinPlan().regionIds();
    size_t KremlinCount = Ordered.size();
    std::set<RegionId> InKremlin(Ordered.begin(), Ordered.end());
    for (RegionId R : Run.ManualPlan)
      if (!InKremlin.count(R))
        Ordered.push_back(R);

    std::vector<double> Cum = Sim.cumulativeTimeReduction(Ordered);
    std::printf("%-8s", Name.c_str());
    double Prev = 0.0;
    for (size_t I = 0; I < Cum.size(); ++I) {
      if (I == KremlinCount)
        std::printf(" |");
      double Marginal = (Cum[I] - Prev) * 100.0;
      Prev = Cum[I];
      std::printf(" %5.1f", Marginal);
      if (I >= 19 && Cum.size() > 22 && I + 3 < Cum.size()) {
        std::printf(" ... (%zu more)", Cum.size() - I - 1);
        // Jump to the tail: print the final cumulative value instead.
        break;
      }
    }
    std::printf("   [total %.1f%%]\n",
                (Cum.empty() ? 0.0 : Cum.back()) * 100.0);
    Reporter.metric(Name + ".total_time_reduction_pct",
                    (Cum.empty() ? 0.0 : Cum.back()) * 100.0);
    Reporter.metric(Name + ".kremlin_plan_reduction_pct",
                    (KremlinCount == 0 || Cum.empty()
                         ? 0.0
                         : Cum[KremlinCount - 1] * 100.0));
  }
  std::printf("\npaper shape: regions right of the dotted line (MANUAL-only)"
              " add negligible benefit;\nmarginals are mostly decreasing but"
              " noisy (NUMA migration amortizes as coverage grows)\n");
  return 0;
}
