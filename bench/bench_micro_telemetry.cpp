//===- bench/bench_micro_telemetry.cpp - Telemetry overhead benches -------===//
//
// Microbenchmarks for the self-telemetry layer, centered on the contract
// the pipeline instrumentation relies on: with tracing disabled, entering
// and leaving a Span costs one relaxed-atomic increment and nothing else.
// Counter/histogram updates and filtered-out log calls are measured too,
// since they sit on the shadow-memory flush and driver diagnostics paths.
//
//===----------------------------------------------------------------------===//

#include "GBenchJson.h"

#include "support/AccessLog.h"
#include "support/Telemetry.h"

#include <benchmark/benchmark.h>

using namespace kremlin;

namespace {

/// The disabled fast path: one relaxed fetch_add on the event counter,
/// then an early return. This is what every pipeline stage pays when the
/// user did not ask for a trace.
void BM_SpanDisabled(benchmark::State &State) {
  telemetry::setTraceEnabled(false);
  for (auto _ : State) {
    telemetry::Span S("bench.span");
    benchmark::DoNotOptimize(&S);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SpanDisabled);

/// The enabled path: record start/stop into the lock-sharded trace buffer.
/// Drained each pause so the buffer does not grow across iterations.
void BM_SpanEnabled(benchmark::State &State) {
  telemetry::setTraceEnabled(true);
  for (auto _ : State) {
    telemetry::Span S("bench.span");
    benchmark::DoNotOptimize(&S);
  }
  telemetry::setTraceEnabled(false);
  telemetry::takeTrace();
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SpanEnabled);

/// Counts and discards chunks so the benchmark measures the ring + sink
/// hand-off itself, not unbounded accumulation or file I/O.
struct DiscardingSink final : telemetry::TraceSink {
  uint64_t Events = 0;
  void writeBatch(std::vector<telemetry::TraceEvent> Batch) override {
    Events += Batch.size();
  }
};

/// The streaming path: a sink is installed, so full ring shards hand
/// their chunks to it instead of overwriting. This pins the cost of
/// producing a bounded-memory trace so the streaming overhead over
/// BM_SpanEnabled stays visible in baselines.
void BM_SpanStreamingSink(benchmark::State &State) {
  telemetry::TraceSinkConfig Cfg;
  Cfg.RingEvents = 4096;
  (void)telemetry::setTraceSink(std::make_unique<DiscardingSink>(), Cfg);
  for (auto _ : State) {
    telemetry::Span S("bench.span");
    benchmark::DoNotOptimize(&S);
  }
  (void)telemetry::closeTraceSink();
  telemetry::setTraceRingEvents(0);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_SpanStreamingSink);

void BM_CounterAdd(benchmark::State &State) {
  telemetry::Counter &C =
      telemetry::Registry::global().counter("bench.counter");
  for (auto _ : State)
    C.add();
  benchmark::DoNotOptimize(C.value());
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_CounterAdd);

void BM_HistogramRecord(benchmark::State &State) {
  telemetry::Histogram &H =
      telemetry::Registry::global().histogram("bench.histogram");
  uint64_t V = 1;
  for (auto _ : State) {
    H.record(V);
    V = V * 2862933555777941757ull + 3037000493ull; // Cheap LCG spread.
  }
  benchmark::DoNotOptimize(H.count());
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_HistogramRecord);

/// The per-request span the serve path opens around every HTTP request:
/// a scoped trace context plus a Span carrying the args the access log
/// and Chrome trace need. This is the request-observability hot path.
void BM_RequestSpanWithTraceContext(benchmark::State &State) {
  telemetry::setTraceEnabled(true);
  telemetry::TraceContext Ctx = telemetry::mintTraceContext();
  for (auto _ : State) {
    telemetry::ScopedTraceContext Scope(Ctx);
    telemetry::Span S("bench.request", "serve");
    S.arg("method", "POST");
    S.arg("path", "/ingest");
    benchmark::DoNotOptimize(&S);
  }
  telemetry::setTraceEnabled(false);
  telemetry::takeTrace();
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RequestSpanWithTraceContext);

/// The disabled request path: tracing off, no context installed. The
/// whole per-request observability envelope must collapse to the same
/// near-zero cost as a bare disabled Span.
void BM_RequestSpanDisabledPath(benchmark::State &State) {
  telemetry::setTraceEnabled(false);
  for (auto _ : State) {
    telemetry::Span S("bench.request", "serve");
    S.arg("method", "POST");
    benchmark::DoNotOptimize(&S);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_RequestSpanDisabledPath);

/// Strict traceparent validation, as run once per inbound request that
/// carries the header.
void BM_TraceparentParse(benchmark::State &State) {
  telemetry::TraceContext Ctx = telemetry::mintTraceContext();
  std::string Header = telemetry::formatTraceparent(Ctx);
  for (auto _ : State) {
    telemetry::TraceContext Parsed;
    bool Ok = telemetry::parseTraceparent(Header, Parsed);
    benchmark::DoNotOptimize(Ok);
    benchmark::DoNotOptimize(&Parsed);
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_TraceparentParse);

/// One structured access-log line: JSON formatting plus the buffered
/// write (flushed to /dev/null), the post-response cost every logged
/// request pays.
void BM_AccessLogAppend(benchmark::State &State) {
  Expected<std::unique_ptr<AccessLog>> Log = AccessLog::open("/dev/null");
  if (!Log.ok()) {
    State.SkipWithError("cannot open /dev/null");
    return;
  }
  AccessLogEntry Entry;
  Entry.TraceId = "0123456789abcdef0123456789abcdef";
  Entry.Method = "POST";
  Entry.Path = "/ingest";
  Entry.Status = 200;
  Entry.BytesIn = 4096;
  Entry.BytesOut = 128;
  Entry.QueueWaitUs = 37;
  Entry.HandlerUs = 412;
  Entry.Dedup = "merged";
  for (auto _ : State)
    Log.value()->append(Entry);
  (void)Log.value()->close();
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_AccessLogAppend);

/// A debug log call below the active level: must short-circuit before any
/// formatting happens.
void BM_LogFilteredDebug(benchmark::State &State) {
  telemetry::setLogLevel(telemetry::LogLevel::Error);
  uint64_t N = 0;
  for (auto _ : State) {
    telemetry::logf(telemetry::LogLevel::Debug, "bench",
                    "iteration %llu of %llu",
                    static_cast<unsigned long long>(N),
                    static_cast<unsigned long long>(N + 1));
    ++N;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_LogFilteredDebug);

} // namespace

int main(int argc, char **argv) {
  return kremlin::bench::gbenchJsonMain("micro_telemetry", argc, argv);
}
