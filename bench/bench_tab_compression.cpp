//===- bench/bench_tab_compression.cpp - §4.4 compression -----------------===//
//
// Regenerates the §4.4 compression study: raw parallelism-profile size vs
// the dictionary-compressed representation, per NPB benchmark, plus a
// scaling sweep showing the ratio growing with input size (the paper's W
// inputs ran to 750MB-54GB raw, compressed to 5-774KB, ~119,000x on
// average; our inputs are smaller, so the harness also reports how the
// ratio scales as time steps grow, which is the property that produces the
// paper's enormous factors at full input sizes).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <cstdio>

using namespace kremlin;
using namespace kremlin::bench;

int main(int argc, char **argv) {
  BenchReporter Reporter("tab_compression", argc, argv);
  std::printf("Section 4.4: dictionary compression of region summaries\n\n");
  TablePrinter Table;
  Table.setHeader({"Benchmark", "dyn regions", "raw", "compressed",
                   "ratio", "alphabet"});

  double RatioSum = 0.0;
  unsigned Count = 0;
  for (const std::string &Name : paperBenchmarkNames()) {
    BenchRun Run = runPaperBenchmark(Name);
    const DictionaryCompressor &Dict = *Run.Result.Dict;
    RatioSum += Dict.compressionRatio();
    ++Count;
    Reporter.metric(Name + ".compression_ratio", Dict.compressionRatio());
    Reporter.metric(Name + ".compressed_bytes", Dict.compressedBytes());
    Table.addRow({Name,
                  formatString("%llu",
                               (unsigned long long)Dict.numDynamicRegions()),
                  formatBytes(Dict.rawTraceBytes()),
                  formatBytes(Dict.compressedBytes()),
                  formatFactor(Dict.compressionRatio(), 0),
                  formatString("%zu", Dict.alphabet().size())});
  }
  Table.addSeparator();
  Table.addRow({"average", "", "", "",
                formatFactor(RatioSum / Count, 0), ""});
  std::fputs(Table.render().c_str(), stdout);
  Reporter.metric("overall.compression_ratio_avg", RatioSum / Count);

  // Scaling sweep: the alphabet saturates while the raw trace grows
  // linearly with execution length, so the ratio scales ~linearly — this
  // is what turns into ~119,000x at the paper's full input sizes.
  std::printf("\nscaling with input size (benchmark 'cg', time steps "
              "swept):\n");
  TablePrinter Sweep;
  Sweep.setHeader({"timesteps", "dyn regions", "raw", "compressed",
                   "ratio"});
  for (unsigned T : {2u, 4u, 8u, 16u, 32u}) {
    BenchmarkSpec Spec = paperBenchmarkSpec("cg");
    Spec.Timesteps = T;
    GeneratedBenchmark GB = generateBenchmark(Spec);
    KremlinDriver Driver;
    DriverResult R = Driver.runOnSource(GB.Source, "cg.c");
    if (!R.succeeded())
      return 1;
    Sweep.addRow({formatString("%u", T),
                  formatString("%llu",
                               (unsigned long long)R.Dict->numDynamicRegions()),
                  formatBytes(R.Dict->rawTraceBytes()),
                  formatBytes(R.Dict->compressedBytes()),
                  formatFactor(R.Dict->compressionRatio(), 0)});
  }
  std::fputs(Sweep.render().c_str(), stdout);
  std::printf("\npaper (full W inputs): raw 750MB-54GB (avg 17.9GB) -> "
              "5KB-774KB (avg 150KB), ~119,000x\n");
  return 0;
}
