//===- bench/bench_tab_overhead.cpp - §4.4 instrumentation overhead -------===//
//
// Regenerates the §4.4 overhead claim: code instrumented with the HCPA
// infrastructure runs ~50x slower than gprof-style profiling. Here the
// baseline is plain interpretation (a gprof-style time profile costs
// almost nothing on top of that: one counter per region entry), and the
// measurement is the same interpreter driving the full shadow-memory
// runtime. google-benchmark reports both; the ratio is the overhead
// factor.
//
//===----------------------------------------------------------------------===//

#include "GBenchJson.h"

#include "instrument/Instrumenter.h"
#include "parser/Lower.h"

#include <benchmark/benchmark.h>

using namespace kremlin;

namespace {

/// Compiles + instruments tracking.c once for all measurements.
const Module &trackingModule() {
  static std::unique_ptr<Module> M = [] {
    LowerResult LR = compileMiniC(trackingSource(), "tracking.c");
    if (!LR.succeeded())
      std::abort();
    instrumentModule(*LR.M);
    return std::move(LR.M);
  }();
  return *M;
}

void BM_PlainExecution(benchmark::State &State) {
  const Module &M = trackingModule();
  Interpreter Interp(M);
  uint64_t Instructions = 0;
  for (auto _ : State) {
    ExecResult R = Interp.run();
    if (!R.Ok)
      State.SkipWithError("execution failed");
    Instructions += R.DynInstructions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
BENCHMARK(BM_PlainExecution)->Unit(benchmark::kMillisecond);

void BM_HcpaInstrumentedExecution(benchmark::State &State) {
  const Module &M = trackingModule();
  Interpreter Interp(M);
  uint64_t Instructions = 0;
  for (auto _ : State) {
    DictionaryCompressor Dict;
    KremlinConfig Cfg;
    Cfg.NumLevels = static_cast<unsigned>(State.range(0));
    KremlinRuntime RT(Cfg, Dict);
    ExecResult R = Interp.run(&RT);
    if (!R.Ok)
      State.SkipWithError("execution failed");
    Instructions += R.DynInstructions;
  }
  State.SetItemsProcessed(static_cast<int64_t>(Instructions));
}
// Depth-window ablation: narrower windows cost less (the paper's
// command-line flag for partitioned collection exists for exactly this
// trade).
BENCHMARK(BM_HcpaInstrumentedExecution)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Unit(benchmark::kMillisecond);

// --- Isolated hook cost -------------------------------------------------
//
// The interpreted baseline above pays interpretation on both sides, which
// hides the instrumentation cost a native binary would see. These two
// benchmarks isolate it: the cost of one HCPA hook (per executed
// instruction, at a given region depth) vs. the cost of a gprof-style
// profiler's work (a counter bump per region entry, amortized per
// instruction — effectively one increment). Their ratio is the
// apples-to-apples version of the paper's "~50x slower than
// gprof-instrumented code".

/// A sink that discards summaries (isolates the hook path).
class NullSink : public RegionSummarySink {
public:
  SummaryChar intern(DynRegionSummary) override { return 0; }
  void onRootExit(SummaryChar) override {}
};

void BM_HcpaHookPerInstruction(benchmark::State &State) {
  NullSink Sink;
  KremlinConfig Cfg;
  KremlinRuntime RT(Cfg, Sink);
  RT.pushFrame(/*NumRegs=*/64);
  unsigned Depth = static_cast<unsigned>(State.range(0));
  for (unsigned D = 0; D < Depth; ++D)
    RT.enterRegion(0);
  ValueId Reg = 0;
  for (auto _ : State) {
    RT.onOp(Opcode::Add, (Reg + 2) % 64, Reg % 64, (Reg + 1) % 64,
            /*BreakDepA=*/false);
    ++Reg;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_HcpaHookPerInstruction)->Arg(2)->Arg(6)->Arg(12);

void BM_GprofStyleHookPerInstruction(benchmark::State &State) {
  // gprof's runtime work amortized per instruction: one counter bump.
  volatile uint64_t Counter = 0;
  for (auto _ : State)
    Counter = Counter + 1;
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_GprofStyleHookPerInstruction);

} // namespace

int main(int argc, char **argv) {
  return kremlin::bench::gbenchJsonMain("tab_overhead", argc, argv);
}
