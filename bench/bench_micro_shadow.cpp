//===- bench/bench_micro_shadow.cpp - Shadow-memory microbenchmarks -------===//
//
// Microbenchmarks for the two-level shadow memory: read/write throughput,
// the cost of the per-level tag check, lazy segment allocation, and the
// level-array width trade-off. These quantify the design choices DESIGN.md
// calls out (fixed-size level arrays + instance tags vs. reallocating
// per-region shadow state).
//
//===----------------------------------------------------------------------===//

#include "GBenchJson.h"

#include "rt/ShadowMemory.h"

#include <benchmark/benchmark.h>

using namespace kremlin;

namespace {

void BM_ShadowWrite(benchmark::State &State) {
  unsigned Levels = static_cast<unsigned>(State.range(0));
  ShadowMemory Mem(Levels);
  uint64_t Addr = 0;
  for (auto _ : State) {
    Mem.write(Addr % 65536, Addr % Levels, /*Tag=*/7, /*T=*/Addr);
    ++Addr;
  }
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShadowWrite)->Arg(4)->Arg(16)->Arg(64);

void BM_ShadowReadHit(benchmark::State &State) {
  unsigned Levels = static_cast<unsigned>(State.range(0));
  ShadowMemory Mem(Levels);
  for (uint64_t A = 0; A < 65536; ++A)
    Mem.write(A, A % Levels, /*Tag=*/7, /*T=*/A);
  uint64_t Addr = 0;
  uint64_t Sum = 0;
  for (auto _ : State) {
    Sum += Mem.read(Addr % 65536, Addr % Levels, /*Tag=*/7);
    ++Addr;
  }
  benchmark::DoNotOptimize(Sum);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShadowReadHit)->Arg(4)->Arg(16)->Arg(64);

/// Stale-tag reads: the instance-tag rejection path (returns 0 without
/// branching on region identity) — the mechanism that lets one level slot
/// serve every same-depth region.
void BM_ShadowReadStaleTag(benchmark::State &State) {
  ShadowMemory Mem(16);
  for (uint64_t A = 0; A < 65536; ++A)
    Mem.write(A, 3, /*Tag=*/7, /*T=*/A);
  uint64_t Addr = 0;
  uint64_t Sum = 0;
  for (auto _ : State) {
    Sum += Mem.read(Addr % 65536, 3, /*Tag=*/99); // Mismatch: reads as 0.
    ++Addr;
  }
  benchmark::DoNotOptimize(Sum);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShadowReadStaleTag);

/// Cold reads through unallocated segments (lazy allocation fast path).
void BM_ShadowReadUnallocated(benchmark::State &State) {
  ShadowMemory Mem(16);
  Mem.write(0, 0, 1, 1); // One touched segment only.
  uint64_t Addr = 1 << 20;
  uint64_t Sum = 0;
  for (auto _ : State) {
    Sum += Mem.read(Addr, 0, 1);
    Addr += 4096;
    if (Addr > (1ull << 26))
      Addr = 1 << 20;
  }
  benchmark::DoNotOptimize(Sum);
  State.SetItemsProcessed(State.iterations());
}
BENCHMARK(BM_ShadowReadUnallocated);

} // namespace

int main(int argc, char **argv) {
  return kremlin::bench::gbenchJsonMain("micro_shadow", argc, argv);
}
