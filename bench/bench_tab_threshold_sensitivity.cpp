//===- bench/bench_tab_threshold_sensitivity.cpp - §5.1 sensitivity -------===//
//
// Regenerates the §5.1 sensitivity claim: "Our sensitivity analysis
// suggests that Kremlin is not particularly sensitive to minor variations
// in the settings of these parameters." The three OpenMP-personality
// thresholds (self-parallelism cutoff 5.0, DOALL 0.1%, DOACROSS 3%) are
// each varied around their published values and the suite-wide plan size
// is reported; minor variations should barely move it.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "support/StringUtils.h"

#include <cstdio>
#include <vector>

using namespace kremlin;
using namespace kremlin::bench;

namespace {

/// Total Kremlin plan size across the whole suite under \p Opts.
unsigned totalPlanSize(const std::vector<BenchRun> &Runs,
                       const PlannerOptions &Opts) {
  unsigned Total = 0;
  for (const BenchRun &Run : Runs)
    Total += makeOpenMPPersonality()->plan(Run.profile(), Opts).Items.size();
  return Total;
}

} // namespace

int main(int argc, char **argv) {
  BenchReporter Reporter("tab_threshold_sensitivity", argc, argv);
  std::printf("Section 5.1: planner threshold sensitivity "
              "(suite-wide plan size; published setting = 134)\n\n");
  std::vector<BenchRun> Runs;
  for (const std::string &Name : paperBenchmarkNames())
    Runs.push_back(runPaperBenchmark(Name));

  PlannerOptions Base;
  TablePrinter Table;
  Table.setHeader({"parameter", "low", "paper", "high", "plan@low",
                   "plan@paper", "plan@high"});

  unsigned AtPaper = totalPlanSize(Runs, Base);
  Reporter.metric("overall.plan_size_at_paper_settings", AtPaper);

  {
    PlannerOptions Lo = Base, Hi = Base;
    Lo.MinSelfParallelism = 4.0;
    Hi.MinSelfParallelism = 6.5;
    unsigned AtLo = totalPlanSize(Runs, Lo), AtHi = totalPlanSize(Runs, Hi);
    Reporter.metric("overall.plan_size_at_min_sp_4", AtLo);
    Reporter.metric("overall.plan_size_at_min_sp_6_5", AtHi);
    Table.addRow({"min self-parallelism", "4.0", "5.0", "6.5",
                  formatString("%u", AtLo), formatString("%u", AtPaper),
                  formatString("%u", AtHi)});
  }
  {
    PlannerOptions Lo = Base, Hi = Base;
    Lo.MinDoallSpeedupPct = 0.05;
    Hi.MinDoallSpeedupPct = 0.2;
    Table.addRow({"min DOALL speedup %", "0.05", "0.1", "0.2",
                  formatString("%u", totalPlanSize(Runs, Lo)),
                  formatString("%u", AtPaper),
                  formatString("%u", totalPlanSize(Runs, Hi))});
  }
  {
    PlannerOptions Lo = Base, Hi = Base;
    Lo.MinDoacrossSpeedupPct = 2.0;
    Hi.MinDoacrossSpeedupPct = 4.5;
    Table.addRow({"min DOACROSS speedup %", "2.0", "3.0", "4.5",
                  formatString("%u", totalPlanSize(Runs, Lo)),
                  formatString("%u", AtPaper),
                  formatString("%u", totalPlanSize(Runs, Hi))});
  }
  std::fputs(Table.render().c_str(), stdout);
  std::printf("\npaper: \"Kremlin is not particularly sensitive to minor "
              "variations in the settings of these parameters\"\n");
  return 0;
}
