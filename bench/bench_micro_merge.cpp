//===- bench/bench_micro_merge.cpp - Fleet-merge microbenchmarks ----------===//
//
// Microbenchmarks for the HCPA merge operator: merging identical profiles
// (best case — every alphabet entry re-interns to an existing character),
// merging disjoint profiles (worst case — the alphabet doubles), and
// fanning a whole fleet of variant profiles into one dictionary (the
// `kremlin serve` steady-state ingest path).
//
//===----------------------------------------------------------------------===//

#include "GBenchJson.h"

#include "aggregate/ProfileMerge.h"
#include "support/Prng.h"

#include <benchmark/benchmark.h>

#include <vector>

using namespace kremlin;
using namespace kremlin::aggregate;

namespace {

/// A layered random profile: Entries summaries over a small static-region
/// space, each drawing children from the earlier alphabet (leaves-first),
/// rooted at the last entry. Distinct seeds share no Work values, so
/// cross-seed merges re-intern almost everything.
DictionaryCompressor makeProfile(uint64_t Seed, size_t Entries) {
  Prng R(Seed);
  DictionaryCompressor Dict;
  std::vector<SummaryChar> Chars;
  for (size_t E = 0; E < Entries; ++E) {
    DynRegionSummary S;
    S.Static = static_cast<RegionId>(E % 16);
    uint64_t ChildWork = 0;
    if (!Chars.empty()) {
      SummaryChar C = Chars[R.nextBelow(Chars.size())];
      uint64_t Freq = 1 + R.nextBelow(8);
      S.Children.emplace_back(C, Freq);
      ChildWork = Dict.alphabet()[C].Work * Freq;
    }
    S.Work = ChildWork + 1 + (Seed % 7919) + R.nextBelow(500);
    S.Cp = 1 + R.nextBelow(S.Work);
    Chars.push_back(Dict.intern(std::move(S)));
  }
  Dict.onRootExit(Chars.back());
  return Dict;
}

/// Every entry re-interns to an existing character: the fleet steady state
/// where most nodes report the same behaviour.
void BM_MergeIdentical(benchmark::State &State) {
  size_t Entries = static_cast<size_t>(State.range(0));
  DictionaryCompressor In = makeProfile(1, Entries);
  for (auto _ : State) {
    DictionaryCompressor Out = makeProfile(1, Entries);
    mergeInto(Out, In);
    benchmark::DoNotOptimize(Out.alphabet().size());
  }
  State.SetItemsProcessed(State.iterations() * Entries);
}
BENCHMARK(BM_MergeIdentical)->Arg(64)->Arg(1024);

/// Nothing shared: every entry is a fresh intern plus a child remap.
void BM_MergeDisjoint(benchmark::State &State) {
  size_t Entries = static_cast<size_t>(State.range(0));
  DictionaryCompressor In = makeProfile(2, Entries);
  for (auto _ : State) {
    DictionaryCompressor Out = makeProfile(3, Entries);
    mergeInto(Out, In);
    benchmark::DoNotOptimize(Out.alphabet().size());
  }
  State.SetItemsProcessed(State.iterations() * Entries);
}
BENCHMARK(BM_MergeDisjoint)->Arg(64)->Arg(1024);

/// A 32-node fleet folds into one profile — the merge half of a serve
/// ingest burst.
void BM_MergeFleet(benchmark::State &State) {
  constexpr size_t Nodes = 32, Entries = 128;
  std::vector<DictionaryCompressor> Fleet;
  std::vector<const DictionaryCompressor *> Ptrs;
  for (size_t N = 0; N < Nodes; ++N)
    Fleet.push_back(makeProfile(100 + N, Entries));
  for (const DictionaryCompressor &D : Fleet)
    Ptrs.push_back(&D);
  for (auto _ : State) {
    DictionaryCompressor Out = mergeProfiles(Ptrs);
    benchmark::DoNotOptimize(Out.numDynamicRegions());
  }
  State.SetItemsProcessed(State.iterations() * Nodes * Entries);
}
BENCHMARK(BM_MergeFleet);

} // namespace

int main(int argc, char **argv) {
  return kremlin::bench::gbenchJsonMain("micro_merge", argc, argv);
}
